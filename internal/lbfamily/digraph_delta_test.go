package lbfamily_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"congesthard/internal/comm"
	"congesthard/internal/constructions/hamlb"
	"congesthard/internal/constructions/kmdslb"
	"congesthard/internal/cover"
	"congesthard/internal/graph"
	"congesthard/internal/lbfamily"
)

func digraphDeltaFamilies(t *testing.T) []lbfamily.DigraphFamily {
	t.Helper()
	ham, err := hamlb.New(2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cover.Find(4, 12, 2, 7, 500)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := kmdslb.NewDirSteiner(kmdslb.Params{Collection: c, R: 2})
	if err != nil {
		t.Fatal(err)
	}
	return []lbfamily.DigraphFamily{ham, dir}
}

// TestDigraphDeltaMatchesRebuildPairForPair is the differential contract
// of the directed incremental verifier: for every opted-in directed
// family, the Gray-code delta walk and the rebuild-from-scratch path must
// agree on every pair's structural hashes and predicate verdict.
func TestDigraphDeltaMatchesRebuildPairForPair(t *testing.T) {
	for _, fam := range digraphDeltaFamilies(t) {
		fam := fam
		t.Run(fam.Name(), func(t *testing.T) {
			if _, ok := fam.(lbfamily.DeltaDigraphFamily); !ok {
				t.Fatal("family does not implement DeltaDigraphFamily")
			}
			xs := allInputs(t, fam.K())
			got, usedDelta, err := lbfamily.CollectDigraphOutcomesForTest(fam, xs, xs, false)
			if err != nil {
				t.Fatal(err)
			}
			if !usedDelta {
				t.Fatal("delta path fell back to rebuild")
			}
			want, usedDelta, err := lbfamily.CollectDigraphOutcomesForTest(fam, xs, xs, true)
			if err != nil {
				t.Fatal(err)
			}
			if usedDelta {
				t.Fatal("forced rebuild still used the delta path")
			}
			for i := range want {
				x, y := xs[i/len(xs)], xs[i%len(xs)]
				g, w := got[i], want[i]
				if g.BuildErr != nil || w.BuildErr != nil || g.PredErr != nil || w.PredErr != nil {
					t.Fatalf("(%s,%s): unexpected errors %v %v %v %v", x, y, g.BuildErr, w.BuildErr, g.PredErr, w.PredErr)
				}
				if g.N != w.N {
					t.Fatalf("(%s,%s): n = %d, rebuild %d", x, y, g.N, w.N)
				}
				if g.CutHash != w.CutHash || g.AHash != w.AHash || g.BHash != w.BHash {
					t.Fatalf("(%s,%s): hashes diverge: delta (%x,%x,%x) rebuild (%x,%x,%x)",
						x, y, g.CutHash, g.AHash, g.BHash, w.CutHash, w.AHash, w.BHash)
				}
				if g.Got != w.Got {
					t.Fatalf("(%s,%s): predicate verdict %v, rebuild %v", x, y, g.Got, w.Got)
				}
			}
		})
	}
}

// condition4BrokenDigraph claims the Hamiltonian path family reduces from
// DISJ instead of ¬DISJ while keeping the delta surface (promoted from
// the embedded family) perfectly consistent with Build.
type condition4BrokenDigraph struct {
	*hamlb.Family
}

func (condition4BrokenDigraph) Func() comm.Function { return comm.Disjointness{} }

// toyDigraphDelta is a K=1 directed family with an optional deliberate
// condition-2 break that Build and ApplyBit implement consistently:
// vertices 0,1 are Alice's, 2,3,4 Bob's; (1,2) is the fixed cut arc; x
// toggles (0,1), y toggles (2,3), and with breakB set x also toggles
// Bob's arc (3,4). With inconsistentApply set, ApplyBit silently drops
// Alice's toggle — a broken delta surface the spot-check must detect.
type toyDigraphDelta struct {
	breakB            bool
	inconsistentApply bool
}

func (d *toyDigraphDelta) Name() string        { return "toy-digraph-delta" }
func (d *toyDigraphDelta) K() int              { return 1 }
func (d *toyDigraphDelta) Func() comm.Function { return comm.Negation{F: comm.Disjointness{}} }
func (d *toyDigraphDelta) AliceSide() []bool   { return []bool{true, true, false, false, false} }

func (d *toyDigraphDelta) Build(x, y comm.Bits) (*graph.Digraph, error) {
	g := graph.NewDigraph(5)
	g.MustAddArc(1, 2)
	if x.Get(0) {
		g.MustAddArc(0, 1)
		if d.breakB {
			g.MustAddArc(3, 4)
		}
	}
	if y.Get(0) {
		g.MustAddArc(2, 3)
	}
	return g, nil
}

func (d *toyDigraphDelta) BuildBase() (*graph.Digraph, error) {
	return d.Build(comm.NewBits(1), comm.NewBits(1))
}

func (d *toyDigraphDelta) ApplyBit(g *graph.Digraph, player, bit int, val bool) error {
	if bit != 0 {
		return fmt.Errorf("bit %d out of range", bit)
	}
	if player == lbfamily.PlayerX {
		if d.inconsistentApply {
			return nil // deliberately diverges from Build
		}
		if _, err := g.ToggleArc(0, 1, 1); err != nil {
			return err
		}
		if d.breakB {
			if _, err := g.ToggleArc(3, 4, 1); err != nil {
				return err
			}
		}
		return nil
	}
	_, err := g.ToggleArc(2, 3, 1)
	return err
}

func (d *toyDigraphDelta) Predicate(g *graph.Digraph) (bool, error) {
	return g.HasArc(0, 1) && g.HasArc(2, 3), nil
}

var _ lbfamily.DeltaDigraphFamily = (*toyDigraphDelta)(nil)

// TestDigraphDeltaFirstErrorMatchesRebuild asserts that on deliberately
// broken directed families the delta path reports the byte-identical
// first (row-major) error the rebuild path reports.
func TestDigraphDeltaFirstErrorMatchesRebuild(t *testing.T) {
	ham, err := hamlb.New(2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		fam  lbfamily.DigraphFamily
		want string // substring naming the violated condition
	}{
		{name: "condition4", fam: condition4BrokenDigraph{ham}, want: "condition 4"},
		{name: "condition2", fam: &toyDigraphDelta{breakB: true}, want: "condition 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			deltaErr := lbfamily.VerifyDigraph(tc.fam)
			rebuildErr := lbfamily.VerifyDigraphRebuild(tc.fam)
			if deltaErr == nil || rebuildErr == nil {
				t.Fatalf("broken family accepted: delta=%v rebuild=%v", deltaErr, rebuildErr)
			}
			if deltaErr.Error() != rebuildErr.Error() {
				t.Fatalf("first errors differ:\n delta:   %s\n rebuild: %s", deltaErr, rebuildErr)
			}
			if got := deltaErr.Error(); !strings.Contains(got, tc.want) {
				t.Fatalf("error %q does not mention %q", got, tc.want)
			}
		})
	}
	// The unbroken toy family must verify cleanly on both paths.
	if err := lbfamily.VerifyDigraph(&toyDigraphDelta{}); err != nil {
		t.Fatalf("correct toy digraph delta family rejected: %v", err)
	}
	if err := lbfamily.VerifyDigraphRebuild(&toyDigraphDelta{}); err != nil {
		t.Fatalf("correct toy digraph delta family rejected by rebuild path: %v", err)
	}
}

// TestInconsistentDigraphApplyBitFallsBack: a directed family whose
// ApplyBit disagrees with Build must not be verified through the delta
// path — the surface spot-check detects the divergence and verification
// transparently falls back to rebuilding every pair.
func TestInconsistentDigraphApplyBitFallsBack(t *testing.T) {
	fam := &toyDigraphDelta{inconsistentApply: true}
	xs := allInputs(t, fam.K())
	if _, usedDelta, err := lbfamily.CollectDigraphOutcomesForTest(fam, xs, xs, false); err != nil {
		t.Fatal(err)
	} else if usedDelta {
		t.Fatal("inconsistent delta surface was not detected")
	}
	if err := lbfamily.VerifyDigraph(fam); err != nil {
		t.Fatalf("fallback verification rejected a correct Build: %v", err)
	}
	// The consistent surface must keep the delta path.
	if _, usedDelta, err := lbfamily.CollectDigraphOutcomesForTest(&toyDigraphDelta{}, xs, xs, false); err != nil {
		t.Fatal(err)
	} else if !usedDelta {
		t.Fatal("consistent delta surface fell back")
	}
}

// TestVerifySampledDigraph covers the sampled path (dedup included) on
// correct and broken directed families.
func TestVerifySampledDigraph(t *testing.T) {
	ham, err := hamlb.New(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := lbfamily.VerifySampledDigraph(ham, rand.New(rand.NewSource(1)), 12); err != nil {
		t.Fatal(err)
	}
	broken := condition4BrokenDigraph{ham}
	if err := lbfamily.VerifySampledDigraph(broken, rand.New(rand.NewSource(1)), 12); err == nil {
		t.Fatal("sampled verification accepted a condition-4 break")
	}
}

// TestDigraphDeltaVerifyAllocsPerPair is the directed analogue of
// TestDeltaVerifyAllocsPerPair: delta-enabled exhaustive verification must
// stay O(1) allocations per input pair (per-worker clone/oracle arenas
// amortize to a few allocs per pair at k=2; rebuilds cost hundreds).
func TestDigraphDeltaVerifyAllocsPerPair(t *testing.T) {
	fam, err := hamlb.New(2)
	if err != nil {
		t.Fatal(err)
	}
	pairs := float64(int(1) << uint(2*fam.K()))
	allocs := testing.AllocsPerRun(3, func() {
		if err := lbfamily.VerifyDigraph(fam); err != nil {
			t.Fatal(err)
		}
	})
	if perPair := allocs / pairs; perPair > 16 {
		t.Errorf("%s: %.1f allocs/pair (%.0f total for %.0f pairs), want <= 16",
			fam.Name(), perPair, allocs, pairs)
	}
}
