package lbfamily

import (
	"context"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"congesthard/internal/comm"
	"congesthard/internal/graph"
)

// DeltaDigraphFamily is the directed analogue of DeltaFamily: G_{x,y} is a
// fixed arc skeleton (BuildBase, the all-zeros instance) plus a bounded
// set of arcs attached to each input bit, so the exhaustive verifier can
// walk the 2^(2K) input pairs in Gray-code order and update one mutable
// instance digraph in O(delta) per pair.
//
// Contract: ApplyBit(d, player, bit, val) transforms the instance of an
// input whose (player, bit) is !val into the instance where it is val,
// mutating arcs only (no vertex additions or vertex-weight changes) and
// only through ToggleArc, so the digraph's arc-mutation journal captures
// the delta. Before taking the delta path, VerifyDigraph spot-checks the
// surface: BuildBase plus ApplyBit over every bit must reproduce Build's
// all-ones instance hash-for-hash, else it falls back to rebuilding every
// pair. Exhaustive pair-for-pair agreement of the two paths is asserted by
// the package's differential tests for the in-repo directed families.
type DeltaDigraphFamily interface {
	DigraphFamily
	// BuildBase constructs the all-zeros instance G_{0,0}.
	BuildBase() (*graph.Digraph, error)
	// ApplyBit applies the change of one input bit to val.
	ApplyBit(d *graph.Digraph, player, bit int, val bool) error
}

// DigraphPredicateOracle is the directed analogue of PredicateOracle: a
// reusable predicate evaluator a verification worker holds across many
// pairs so predicate evaluation stops paying per-call allocation.
type DigraphPredicateOracle interface {
	Eval(d *graph.Digraph) (bool, error)
}

// DigraphOracleFamily is implemented by directed families whose predicate
// can be evaluated through a reusable per-worker oracle. The oracle's
// verdicts (and errors) must match Predicate exactly.
type DigraphOracleFamily interface {
	DigraphFamily
	NewDigraphPredicateOracle() DigraphPredicateOracle
}

// VerifyDigraph is Verify for directed families (exhaustive; K <= 12).
// Families implementing DeltaDigraphFamily are verified delta-driven: each
// worker walks its column shard in Gray-code order over x for fixed y,
// toggling only the changed bit's arcs between pairs and maintaining the
// structural hashes incrementally from the arc journal. Everything
// observable — the checks, the first-error choice and its message — is
// identical to the rebuild-every-pair path, which remains the transparent
// fallback.
func VerifyDigraph(fam DigraphFamily) error { return VerifyDigraphCtx(context.Background(), fam) }

// VerifyDigraphCtx is VerifyDigraph with cancellation: when ctx fires
// mid-sweep the workers drain promptly and the call returns a
// *CancelledError carrying the completed/total pair counts. A panic
// inside a worker is confined to its pair and surfaces as a *PanicError
// naming the (x, y) pair.
func VerifyDigraphCtx(ctx context.Context, fam DigraphFamily) error {
	k := fam.K()
	if k > 12 {
		return fmt.Errorf("exhaustive verification limited to K <= 12, got %d (use VerifySampledDigraph)", k)
	}
	inputs := make([]comm.Bits, 0, 1<<uint(k))
	if err := comm.AllBits(k, func(b comm.Bits) { inputs = append(inputs, b.Clone()) }); err != nil {
		return err
	}
	return verifyDigraphOverMode(ctx, fam, inputs, inputs, false)
}

// VerifySampledDigraph checks Definition 1.1 for a directed family on up
// to trials distinct random input pairs plus the all-zeros and all-ones
// corners (random draws are deduplicated, like VerifySampled's).
// Structural conditions (1-3) are checked pairwise across the sample.
func VerifySampledDigraph(fam DigraphFamily, rng *rand.Rand, trials int) error {
	return VerifySampledDigraphCtx(context.Background(), fam, rng, trials)
}

// VerifySampledDigraphCtx is VerifySampledDigraph with cancellation, like
// VerifyDigraphCtx.
func VerifySampledDigraphCtx(ctx context.Context, fam DigraphFamily, rng *rand.Rand, trials int) error {
	inputs := sampledInputs(fam.K(), rng, trials)
	return verifyDigraphOverMode(ctx, fam, inputs, inputs, false)
}

func verifyDigraphOverMode(ctx context.Context, fam DigraphFamily, xs, ys []comm.Bits, forceRebuild bool) error {
	side := fam.AliceSide()
	total := len(xs) * len(ys)
	if total == 0 {
		return nil
	}
	outcomes, completed, _ := collectDigraphOutcomes(ctx, fam, side, xs, ys, forceRebuild)
	if err := sweepCancelled(ctx, completed, total); err != nil {
		return err
	}
	return scanDigraphOutcomes(fam, side, xs, ys, outcomes)
}

// collectDigraphOutcomes is directed verification phase 1: it computes
// every pair's outcome, delta-driven when the family opts in (and the
// delta machinery encounters no unexpected failure), rebuilding every
// instance otherwise. It also reports the number of pairs fully computed
// (less than the total only under cancellation) and whether the delta
// path produced the outcomes. A cancelled delta sweep does NOT fall back
// to the rebuild path — the interruption is the caller's to report.
func collectDigraphOutcomes(ctx context.Context, fam DigraphFamily, side []bool, xs, ys []comm.Bits, forceRebuild bool) ([]pairOutcome, int, bool) {
	bobSide := make([]bool, len(side))
	for i, a := range side {
		bobSide[i] = !a
	}
	if !forceRebuild {
		if df, ok := fam.(DeltaDigraphFamily); ok {
			if outcomes, completed, ok := computeDigraphPairsDelta(ctx, df, side, bobSide, xs, ys); ok {
				return outcomes, completed, true
			}
		}
	}
	total := len(xs) * len(ys)
	outcomes, completed := computePairs(ctx, total, func(idx int64, out *pairOutcome) bool {
		x, y := xs[idx/int64(len(ys))], ys[idx%int64(len(ys))]
		d, err := fam.Build(x, y)
		if err != nil {
			out.buildErr = err
			return false
		}
		out.n = d.N()
		if out.n != len(side) {
			return false
		}
		out.cutHash = d.CutHash(side)
		out.aHash = d.HashWithin(side)
		out.bHash = d.HashWithin(bobSide)
		out.got, out.predErr = fam.Predicate(d)
		return out.predErr == nil
	})
	return outcomes, completed, false
}

// digraphDeltaSurfaceConsistent is the directed analogue of
// deltaSurfaceConsistent: BuildBase plus ApplyBit(val = true) over every
// bit of both players must reproduce Build's all-ones instance — same
// vertex count, same cut hash, same induced-side hashes — before the
// delta path is trusted.
func digraphDeltaSurfaceConsistent(df DeltaDigraphFamily, side, bobSide []bool) bool {
	k := df.K()
	ones := comm.OnesBits(k)
	want, err := df.Build(ones, ones)
	if err != nil || want == nil || want.N() != len(side) {
		return false
	}
	d, err := df.BuildBase()
	if err != nil || d == nil || d.N() != len(side) {
		return false
	}
	for _, player := range [2]int{PlayerX, PlayerY} {
		for i := 0; i < k; i++ {
			if err := df.ApplyBit(d, player, i, true); err != nil {
				return false
			}
		}
	}
	return d.CutHash(side) == want.CutHash(side) &&
		d.HashWithin(side) == want.HashWithin(side) &&
		d.HashWithin(bobSide) == want.HashWithin(bobSide)
}

// computeDigraphPairsDelta is the delta-driven directed phase 1: the base
// instance is built once and cloned per worker (cheaper than rebuilding
// the skeleton arc by arc); each worker claims columns (fixed y) and
// walks x across each column in reflected Gray-code order, folding the
// journaled arc deltas into incrementally maintained cut/side hashes. Any
// unexpected failure of the delta machinery reports ok = false and the
// caller transparently falls back to the rebuild path, whose error
// reporting is the historical reference.
func computeDigraphPairsDelta(ctx context.Context, df DeltaDigraphFamily, side, bobSide []bool, xs, ys []comm.Bits) ([]pairOutcome, int, bool) {
	if !digraphDeltaSurfaceConsistent(df, side, bobSide) {
		return nil, 0, false
	}
	base, err := df.BuildBase()
	if err != nil || base == nil || base.N() != len(side) {
		return nil, 0, false
	}
	total := len(xs) * len(ys)
	order := walkOrder(xs, df.K())
	outcomes := make([]pairOutcome, total)
	var nextCol, minErr, completed atomic.Int64
	minErr.Store(int64(total))
	ok := atomic.Bool{}
	ok.Store(true)
	var wg sync.WaitGroup
	for w := verifyWorkers(len(ys)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A panic outside predicate evaluation abandons the delta
			// path; the rebuild fallback recomputes every pair with
			// per-pair confinement.
			defer func() {
				if r := recover(); r != nil {
					ok.Store(false)
				}
			}()
			if !digraphDeltaWorker(ctx, df, base.Clone(), side, bobSide, xs, ys, order, outcomes, &nextCol, &minErr, &completed) {
				ok.Store(false)
			}
		}()
	}
	wg.Wait()
	return outcomes, int(completed.Load()), ok.Load()
}

// digraphDeltaWorker claims columns until none remain or ctx fires,
// mirroring deltaWorker arc-for-edge. It reports false when the delta
// machinery itself failed and the caller must fall back; cancellation is
// NOT a failure.
//
//hardness:hotpath
func digraphDeltaWorker(ctx context.Context, df DeltaDigraphFamily, d *graph.Digraph, side, bobSide []bool, xs, ys []comm.Bits, order []int, outcomes []pairOutcome, nextCol, minErr, completed *atomic.Int64) bool {
	k := df.K()
	d.FreezePatchable()
	d.StartJournal()
	curX, curY := comm.NewBits(k), comm.NewBits(k)
	cutH := d.CutHash(side)
	aH := d.HashWithin(side)
	bH := d.HashWithin(bobSide)
	n := d.N()
	eval := df.Predicate
	if of, ok := DigraphFamily(df).(DigraphOracleFamily); ok {
		eval = of.NewDigraphPredicateOracle().Eval
	}

	// applyDiff toggles the bits on which cur and target differ and folds
	// the journaled arc deltas into the three running hashes: O(1) per
	// toggled arc, versus the O(|V|+|A| log |A|) rebuild-and-rehash per
	// pair of the fallback path.
	applyDiff := func(player int, cur, target comm.Bits) error {
		var applyErr error
		cur.ForEachDiff(target, func(i int) bool {
			if err := df.ApplyBit(d, player, i, target.Get(i)); err != nil {
				applyErr = err
				return false
			}
			cur.Set(i, target.Get(i))
			return true
		})
		if applyErr != nil {
			return applyErr
		}
		// One toggle's journal: O(attached arcs), cannot block; the
		// claiming loop checks ctx once per pair.
		for _, a := range d.Journal() { //nolint:hardlint/ctxflow bounded per-toggle fold; ctx checked per pair
			h := graph.ArcHash(a.From, a.To, a.W)
			switch {
			case side[a.From] != side[a.To]:
				cutH ^= h
			case side[a.From]:
				aH ^= h
			default:
				bH ^= h
			}
		}
		d.ClearJournal()
		return nil
	}

	// evalInto runs the predicate with panic confinement: a panic becomes
	// the pair's panicErr instead of abandoning the delta path, since it
	// would recur identically under the rebuild fallback.
	evalInto := func(out *pairOutcome) {
		defer func() {
			if r := recover(); r != nil {
				out.panicErr = &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		out.got, out.predErr = eval(d)
	}

	for {
		if ctx.Err() != nil {
			return true // cancelled, not broken: keep the partial outcomes
		}
		yi := int(nextCol.Add(1) - 1)
		if yi >= len(ys) {
			return true
		}
		if err := applyDiff(PlayerY, curY, ys[yi]); err != nil {
			return false
		}
		for _, xi := range order {
			if ctx.Err() != nil {
				return true
			}
			if err := applyDiff(PlayerX, curX, xs[xi]); err != nil {
				return false
			}
			idx := int64(xi)*int64(len(ys)) + int64(yi)
			out := &outcomes[idx]
			out.n = n
			out.cutHash, out.aHash, out.bHash = cutH, aH, bH
			if idx > minErr.Load() {
				continue // a pair earlier in row-major order already failed
			}
			evalInto(out)
			if out.predErr != nil || out.panicErr != nil {
				storeMin(minErr, idx)
			}
			completed.Add(1)
		}
	}
}

// scanDigraphOutcomes is directed verification phase 2: the serial
// row-major pass, identical in order and messages to the historical
// serial digraph verifier.
func scanDigraphOutcomes(fam DigraphFamily, side []bool, xs, ys []comm.Bits, outcomes []pairOutcome) error {
	f := fam.Func()
	wantN := -1
	var cutHash uint64
	cutSeen := false
	bByY := make([]uint64, len(ys))
	bSeen := make([]bool, len(ys))
	aByX := make([]uint64, len(xs))
	aSeen := make([]bool, len(xs))
	for xi, x := range xs {
		for yi, y := range ys {
			out := &outcomes[xi*len(ys)+yi]
			if out.panicErr != nil {
				// Checked before the structural conditions: a pair that
				// panicked mid-compute has no meaningful n or hashes.
				out.panicErr.X, out.panicErr.Y = x, y
				return out.panicErr
			}
			if out.buildErr != nil {
				return fmt.Errorf("build(%s,%s): %w", x, y, out.buildErr)
			}
			if wantN == -1 {
				wantN = out.n
				if len(side) != wantN {
					return fmt.Errorf("AliceSide has %d entries for %d vertices", len(side), wantN)
				}
			}
			if out.n != wantN {
				return fmt.Errorf("condition 1 violated: vertex count %d != %d", out.n, wantN)
			}
			if !cutSeen {
				cutHash = out.cutHash
				cutSeen = true
			} else if out.cutHash != cutHash {
				return fmt.Errorf("cut arcs changed with input at (%s,%s)", x, y)
			}
			if bSeen[yi] && bByY[yi] != out.bHash {
				return fmt.Errorf("condition 2 violated: G[V_B] changed with x at (%s,%s)", x, y)
			}
			bByY[yi], bSeen[yi] = out.bHash, true
			if aSeen[xi] && aByX[xi] != out.aHash {
				return fmt.Errorf("condition 3 violated: G[V_A] changed with y at (%s,%s)", x, y)
			}
			aByX[xi], aSeen[xi] = out.aHash, true
			if out.predErr != nil {
				return fmt.Errorf("predicate at (%s,%s): %w", x, y, out.predErr)
			}
			if want := f.Eval(x, y); out.got != want {
				return fmt.Errorf("condition 4 violated at (x=%s, y=%s): P=%v but %s=%v", x, y, out.got, f.Name(), want)
			}
		}
	}
	return nil
}

// MeasureDigraphStats builds the all-zeros instance of a directed family
// and reports its parameters.
func MeasureDigraphStats(fam DigraphFamily) (Stats, error) {
	zero := comm.NewBits(fam.K())
	d, err := fam.Build(zero, zero)
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		N:       d.N(),
		M:       d.M(),
		CutSize: len(d.CutArcs(fam.AliceSide())),
		K:       fam.K(),
	}, nil
}
