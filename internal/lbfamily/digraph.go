package lbfamily

import (
	"fmt"

	"congesthard/internal/comm"
)

// VerifyDigraph is Verify for directed families (exhaustive; K <= 12).
func VerifyDigraph(fam DigraphFamily) error {
	k := fam.K()
	if k > 12 {
		return fmt.Errorf("exhaustive verification limited to K <= 12, got %d", k)
	}
	inputs := make([]comm.Bits, 0, 1<<uint(k))
	if err := comm.AllBits(k, func(b comm.Bits) { inputs = append(inputs, b.Clone()) }); err != nil {
		return err
	}
	return verifyDigraphOver(fam, inputs, inputs)
}

func verifyDigraphOver(fam DigraphFamily, xs, ys []comm.Bits) error {
	side := fam.AliceSide()
	bobSide := make([]bool, len(side))
	for i, a := range side {
		bobSide[i] = !a
	}
	f := fam.Func()

	wantN := -1
	cutSig := ""
	bSigByY := make(map[string]string)
	aSigByX := make(map[string]string)

	for _, x := range xs {
		for _, y := range ys {
			d, err := fam.Build(x, y)
			if err != nil {
				return fmt.Errorf("build(%s,%s): %w", x, y, err)
			}
			if wantN == -1 {
				wantN = d.N()
				if len(side) != wantN {
					return fmt.Errorf("AliceSide has %d entries for %d vertices", len(side), wantN)
				}
			}
			if d.N() != wantN {
				return fmt.Errorf("condition 1 violated: vertex count %d != %d", d.N(), wantN)
			}
			cut := fmt.Sprintf("%v", d.CutArcs(side))
			if cutSig == "" {
				cutSig = cut
			} else if cut != cutSig {
				return fmt.Errorf("cut arcs changed with input at (%s,%s)", x, y)
			}
			bSig := d.SignatureWithin(bobSide)
			if prev, ok := bSigByY[y.String()]; ok && prev != bSig {
				return fmt.Errorf("condition 2 violated: G[V_B] changed with x at (%s,%s)", x, y)
			}
			bSigByY[y.String()] = bSig
			aSig := d.SignatureWithin(side)
			if prev, ok := aSigByX[x.String()]; ok && prev != aSig {
				return fmt.Errorf("condition 3 violated: G[V_A] changed with y at (%s,%s)", x, y)
			}
			aSigByX[x.String()] = aSig

			got, err := fam.Predicate(d)
			if err != nil {
				return fmt.Errorf("predicate at (%s,%s): %w", x, y, err)
			}
			if want := f.Eval(x, y); got != want {
				return fmt.Errorf("condition 4 violated at (x=%s, y=%s): P=%v but %s=%v", x, y, got, f.Name(), want)
			}
		}
	}
	return nil
}

// MeasureDigraphStats builds the all-zeros instance of a directed family
// and reports its parameters.
func MeasureDigraphStats(fam DigraphFamily) (Stats, error) {
	zero := comm.NewBits(fam.K())
	d, err := fam.Build(zero, zero)
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		N:       d.N(),
		M:       d.M(),
		CutSize: len(d.CutArcs(fam.AliceSide())),
		K:       fam.K(),
	}, nil
}
