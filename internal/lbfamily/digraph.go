package lbfamily

import (
	"fmt"

	"congesthard/internal/comm"
)

// VerifyDigraph is Verify for directed families (exhaustive; K <= 12).
func VerifyDigraph(fam DigraphFamily) error {
	k := fam.K()
	if k > 12 {
		return fmt.Errorf("exhaustive verification limited to K <= 12, got %d", k)
	}
	inputs := make([]comm.Bits, 0, 1<<uint(k))
	if err := comm.AllBits(k, func(b comm.Bits) { inputs = append(inputs, b.Clone()) }); err != nil {
		return err
	}
	return verifyDigraphOver(fam, inputs, inputs)
}

func verifyDigraphOver(fam DigraphFamily, xs, ys []comm.Bits) error {
	side := fam.AliceSide()
	bobSide := make([]bool, len(side))
	for i, a := range side {
		bobSide[i] = !a
	}
	f := fam.Func()
	total := len(xs) * len(ys)
	if total == 0 {
		return nil
	}

	// Same two-phase scheme as verifyOver: parallel workers record per-pair
	// outcomes, a serial row-major pass reproduces the historical checks
	// and error messages deterministically.
	outcomes := computePairs(total, func(idx int64, out *pairOutcome) bool {
		x, y := xs[idx/int64(len(ys))], ys[idx%int64(len(ys))]
		d, err := fam.Build(x, y)
		if err != nil {
			out.buildErr = err
			return false
		}
		out.n = d.N()
		if out.n != len(side) {
			return false
		}
		out.cutHash = d.CutHash(side)
		out.aHash = d.HashWithin(side)
		out.bHash = d.HashWithin(bobSide)
		out.got, out.predErr = fam.Predicate(d)
		return out.predErr == nil
	})

	wantN := -1
	var cutHash uint64
	cutSeen := false
	bByY := make([]uint64, len(ys))
	bSeen := make([]bool, len(ys))
	aByX := make([]uint64, len(xs))
	aSeen := make([]bool, len(xs))
	for xi, x := range xs {
		for yi, y := range ys {
			out := &outcomes[xi*len(ys)+yi]
			if out.buildErr != nil {
				return fmt.Errorf("build(%s,%s): %w", x, y, out.buildErr)
			}
			if wantN == -1 {
				wantN = out.n
				if len(side) != wantN {
					return fmt.Errorf("AliceSide has %d entries for %d vertices", len(side), wantN)
				}
			}
			if out.n != wantN {
				return fmt.Errorf("condition 1 violated: vertex count %d != %d", out.n, wantN)
			}
			if !cutSeen {
				cutHash = out.cutHash
				cutSeen = true
			} else if out.cutHash != cutHash {
				return fmt.Errorf("cut arcs changed with input at (%s,%s)", x, y)
			}
			if bSeen[yi] && bByY[yi] != out.bHash {
				return fmt.Errorf("condition 2 violated: G[V_B] changed with x at (%s,%s)", x, y)
			}
			bByY[yi], bSeen[yi] = out.bHash, true
			if aSeen[xi] && aByX[xi] != out.aHash {
				return fmt.Errorf("condition 3 violated: G[V_A] changed with y at (%s,%s)", x, y)
			}
			aByX[xi], aSeen[xi] = out.aHash, true
			if out.predErr != nil {
				return fmt.Errorf("predicate at (%s,%s): %w", x, y, out.predErr)
			}
			if want := f.Eval(x, y); out.got != want {
				return fmt.Errorf("condition 4 violated at (x=%s, y=%s): P=%v but %s=%v", x, y, out.got, f.Name(), want)
			}
		}
	}
	return nil
}

// MeasureDigraphStats builds the all-zeros instance of a directed family
// and reports its parameters.
func MeasureDigraphStats(fam DigraphFamily) (Stats, error) {
	zero := comm.NewBits(fam.K())
	d, err := fam.Build(zero, zero)
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		N:       d.N(),
		M:       d.M(),
		CutSize: len(d.CutArcs(fam.AliceSide())),
		K:       fam.K(),
	}, nil
}
