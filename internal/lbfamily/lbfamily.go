// Package lbfamily implements the paper's central abstraction, the family
// of lower bound graphs (Definition 1.1), and makes Theorem 1.1 executable:
//
//   - A Family builds the graph G_{x,y} for any input pair and exposes the
//     fixed Alice/Bob vertex partition and the predicate P.
//   - Verify checks conditions 1-4 of Definition 1.1 exhaustively (all
//     2^K x 2^K input pairs) using an exact solver as the predicate oracle;
//     VerifySampled spot-checks larger parameters.
//   - ImpliedLowerBound evaluates the Theorem 1.1 round bound
//     Ω(CC(f) / (|E_cut| log n)) from the measured family parameters.
//   - SimulateTwoParty runs a CONGEST algorithm on G_{x,y} with the cut
//     metered, realizing the Alice-Bob simulation that proves Theorem 1.1.
package lbfamily

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"congesthard/internal/comm"
	"congesthard/internal/congest"
	"congesthard/internal/graph"
)

// Family is a family of lower bound graphs {G_{x,y}} with respect to a
// two-party function f and a graph predicate P (Definition 1.1).
type Family interface {
	// Name identifies the family, e.g. "mds".
	Name() string
	// K is the input length per player.
	K() int
	// Func is the function f the family reduces from. By Definition 1.1
	// condition 4, Predicate(Build(x,y)) must equal Func().Eval(x,y).
	Func() comm.Function
	// Build constructs G_{x,y}.
	Build(x, y comm.Bits) (*graph.Graph, error)
	// AliceSide marks V_A in the (input-independent) vertex set.
	AliceSide() []bool
	// Predicate decides P exactly (it may be expensive; it is the
	// verification oracle, not part of the construction).
	Predicate(g *graph.Graph) (bool, error)
}

// DigraphFamily is the directed-graph analogue of Family, used by the
// Hamiltonian path and directed Steiner constructions.
type DigraphFamily interface {
	Name() string
	K() int
	Func() comm.Function
	Build(x, y comm.Bits) (*graph.Digraph, error)
	AliceSide() []bool
	Predicate(d *graph.Digraph) (bool, error)
}

// Stats are the measured parameters of a family that determine the
// Theorem 1.1 bound.
type Stats struct {
	N       int // vertices in G_{x,y} (fixed across inputs)
	M       int // edges of the all-zero instance
	CutSize int // |E_cut|
	K       int // input bits per player
}

// MeasureStats builds the all-zeros instance and reports its parameters.
func MeasureStats(fam Family) (Stats, error) {
	zero := comm.NewBits(fam.K())
	g, err := fam.Build(zero, zero)
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		N:       g.N(),
		M:       g.M(),
		CutSize: len(g.CutEdges(fam.AliceSide())),
		K:       fam.K(),
	}, nil
}

// ImpliedLowerBound evaluates Theorem 1.1: a family w.r.t. f yields a round
// lower bound of Ω(CC(f) / (|E_cut| log n)). CC(f) is taken from the known
// complexity table (DISJ and EQ and their negations); the result drops
// constant factors.
func ImpliedLowerBound(stats Stats, f comm.Function) (float64, error) {
	inner := f
	if neg, ok := f.(comm.Negation); ok {
		inner = neg.F // CC(f) = CC(not f)
	}
	c, ok := comm.KnownComplexity(inner)
	if !ok {
		return 0, fmt.Errorf("no known complexity for function %s", f.Name())
	}
	if stats.CutSize == 0 || stats.N < 2 {
		return 0, fmt.Errorf("degenerate family stats: %+v", stats)
	}
	return c.Deterministic(stats.K) / (float64(stats.CutSize) * math.Log2(float64(stats.N))), nil
}

// Verify checks Definition 1.1 exhaustively for all input pairs; it
// requires K <= 12 (2^(2K) predicate evaluations). It checks:
//
//  1. the vertex set (count and order) is fixed;
//  2. for fixed y, varying x changes nothing in G[V_B] nor the cut;
//  3. symmetrically for x;
//  4. Predicate(G_{x,y}) == f(x, y) for every pair.
func Verify(fam Family) error {
	k := fam.K()
	if k > 12 {
		return fmt.Errorf("exhaustive verification limited to K <= 12, got %d (use VerifySampled)", k)
	}
	inputs := make([]comm.Bits, 0, 1<<uint(k))
	if err := comm.AllBits(k, func(b comm.Bits) { inputs = append(inputs, b.Clone()) }); err != nil {
		return err
	}
	return verifyOver(fam, inputs, inputs, true)
}

// VerifySampled checks Definition 1.1 on trials random input pairs plus the
// all-zeros and all-ones corners. Structural conditions (1-3) are checked
// pairwise across the sample.
func VerifySampled(fam Family, rng *rand.Rand, trials int) error {
	k := fam.K()
	ones := comm.NewBits(k)
	for i := 0; i < k; i++ {
		ones.Set(i, true)
	}
	inputs := []comm.Bits{comm.NewBits(k), ones}
	for i := 0; i < trials; i++ {
		inputs = append(inputs, comm.RandomBits(k, rng))
	}
	return verifyOver(fam, inputs, inputs, false)
}

// pairOutcome is the per-(x, y) result computed by a verification worker:
// build/predicate errors, the vertex count, 64-bit structural hashes of the
// cut and of the two induced sides, and the predicate's verdict. The cheap
// serial pass over these outcomes reproduces exactly the checks (and error
// messages) of the old serial verifier, in the same row-major order.
type pairOutcome struct {
	buildErr error
	predErr  error
	n        int
	cutHash  uint64
	aHash    uint64
	bHash    uint64
	got      bool
}

// verifyWorkers returns the worker count for a pair workload.
func verifyWorkers(total int) int {
	w := runtime.GOMAXPROCS(0)
	if w > total {
		w = total
	}
	if w < 1 {
		w = 1
	}
	return w
}

// computePairs runs compute for every pair index across a worker pool and
// returns the recorded outcomes. compute fills outcomes[idx] and reports
// whether the pair succeeded; after a failure, workers skip pairs that
// come later in row-major order (the serial scan never reads past the
// first failing pair, which is always fully computed).
func computePairs(total int, compute func(idx int64, out *pairOutcome) bool) []pairOutcome {
	outcomes := make([]pairOutcome, total)
	var nextIdx, minErr atomic.Int64
	minErr.Store(int64(total))
	var wg sync.WaitGroup
	for w := verifyWorkers(total); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := nextIdx.Add(1) - 1
				if idx >= int64(total) {
					return
				}
				if idx > minErr.Load() {
					continue
				}
				if !compute(idx, &outcomes[idx]) {
					storeMin(&minErr, idx)
				}
			}
		}()
	}
	wg.Wait()
	return outcomes
}

func verifyOver(fam Family, xs, ys []comm.Bits, exhaustive bool) error {
	side := fam.AliceSide()
	bobSide := make([]bool, len(side))
	for i, a := range side {
		bobSide[i] = !a
	}
	f := fam.Func()
	total := len(xs) * len(ys)
	if total == 0 {
		return nil
	}

	// Phase 1: build every G_{x,y}, hash its structure and evaluate the
	// predicate, sharded across a worker pool. Workers never decide
	// violations — they only record outcomes — so the error reported below
	// is deterministic regardless of scheduling.
	outcomes := computePairs(total, func(idx int64, out *pairOutcome) bool {
		x, y := xs[idx/int64(len(ys))], ys[idx%int64(len(ys))]
		g, err := fam.Build(x, y)
		if err != nil {
			out.buildErr = err
			return false
		}
		out.n = g.N()
		if out.n != len(side) {
			// Condition 1 violation; the serial pass reports it before
			// any hash of this pair is consulted.
			return false
		}
		out.cutHash = g.CutHash(side)
		out.aHash = g.HashWithin(side)
		out.bHash = g.HashWithin(bobSide)
		out.got, out.predErr = fam.Predicate(g)
		return out.predErr == nil
	})

	// Phase 2: serial row-major scan, identical in order and messages to
	// the historical serial verifier.
	wantN := -1
	var cutHash uint64
	cutSeen := false
	bByY := make([]uint64, len(ys))
	bSeen := make([]bool, len(ys))
	aByX := make([]uint64, len(xs))
	aSeen := make([]bool, len(xs))
	for xi, x := range xs {
		for yi, y := range ys {
			out := &outcomes[xi*len(ys)+yi]
			if out.buildErr != nil {
				return fmt.Errorf("build(%s,%s): %w", x, y, out.buildErr)
			}
			if wantN == -1 {
				wantN = out.n
				if len(side) != wantN {
					return fmt.Errorf("AliceSide has %d entries for %d vertices", len(side), wantN)
				}
			}
			if out.n != wantN {
				return fmt.Errorf("condition 1 violated: vertex count %d != %d at (%s,%s)", out.n, wantN, x, y)
			}
			if !cutSeen {
				cutHash = out.cutHash
				cutSeen = true
			} else if out.cutHash != cutHash {
				return fmt.Errorf("cut edges changed with input at (%s,%s)", x, y)
			}
			if bSeen[yi] && bByY[yi] != out.bHash {
				return fmt.Errorf("condition 2 violated: G[V_B] changed with x at (%s,%s)", x, y)
			}
			bByY[yi], bSeen[yi] = out.bHash, true
			if aSeen[xi] && aByX[xi] != out.aHash {
				return fmt.Errorf("condition 3 violated: G[V_A] changed with y at (%s,%s)", x, y)
			}
			aByX[xi], aSeen[xi] = out.aHash, true
			if out.predErr != nil {
				return fmt.Errorf("predicate at (%s,%s): %w", x, y, out.predErr)
			}
			want := f.Eval(x, y)
			if out.got != want {
				return fmt.Errorf("condition 4 violated at (x=%s, y=%s): P=%v but %s=%v", x, y, out.got, f.Name(), want)
			}
		}
	}
	_ = exhaustive
	return nil
}

// storeMin lowers m to idx if idx is smaller.
func storeMin(m *atomic.Int64, idx int64) {
	for {
		cur := m.Load()
		if idx >= cur || m.CompareAndSwap(cur, idx) {
			return
		}
	}
}

// SimulateTwoParty runs a CONGEST algorithm on G_{x,y} with Alice
// simulating V_A and Bob V_B, metering the bits that cross the cut. This is
// the simulation at the heart of Theorem 1.1: a T-round algorithm yields a
// protocol exchanging at most 2*T*|E_cut|*B bits.
func SimulateTwoParty(fam Family, x, y comm.Bits, factory congest.Factory) (*congest.Result, error) {
	g, err := fam.Build(x, y)
	if err != nil {
		return nil, err
	}
	return congest.Run(g, factory, congest.Options{CutSide: fam.AliceSide()})
}

// DerivedFamily implements Theorem 2.6 (reductions between families of
// lower bound graphs): it transforms every graph of an inner family with a
// fixed, input-oblivious transformation and replaces the predicate. If the
// transformation maps V_A-local structure to V'_A-local structure (and
// symmetrically) — which Verify re-checks from scratch — the derived family
// is again a family of lower bound graphs.
type DerivedFamily struct {
	// Inner is the source family (P1 in Theorem 2.6).
	Inner Family
	// FamilyName names the derived family.
	FamilyName string
	// Transform maps G_{x,y} and the inner Alice side to the derived graph
	// and its Alice side. It must be deterministic and input-oblivious.
	Transform func(g *graph.Graph, aliceSide []bool) (*graph.Graph, []bool, error)
	// Pred decides the derived predicate P2.
	Pred func(g *graph.Graph) (bool, error)
	// F overrides the function; nil keeps the inner family's function.
	F comm.Function

	mu         sync.Mutex // guards cachedSide (Build runs on verify workers)
	cachedSide []bool
}

var _ Family = (*DerivedFamily)(nil)

// Name returns the derived family's name.
func (d *DerivedFamily) Name() string { return d.FamilyName }

// K returns the inner family's input length.
func (d *DerivedFamily) K() int { return d.Inner.K() }

// Func returns the override function or the inner one.
func (d *DerivedFamily) Func() comm.Function {
	if d.F != nil {
		return d.F
	}
	return d.Inner.Func()
}

// Build builds the inner graph and applies the transformation.
func (d *DerivedFamily) Build(x, y comm.Bits) (*graph.Graph, error) {
	g, err := d.Inner.Build(x, y)
	if err != nil {
		return nil, err
	}
	out, side, err := d.Transform(g, d.Inner.AliceSide())
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.cachedSide = side
	d.mu.Unlock()
	return out, nil
}

// AliceSide returns the derived partition (building the zero instance if
// needed to learn it).
func (d *DerivedFamily) AliceSide() []bool {
	d.mu.Lock()
	side := d.cachedSide
	d.mu.Unlock()
	if side == nil {
		zero := comm.NewBits(d.K())
		if _, err := d.Build(zero, zero); err != nil {
			return nil
		}
		d.mu.Lock()
		side = d.cachedSide
		d.mu.Unlock()
	}
	return side
}

// Predicate decides the derived predicate.
func (d *DerivedFamily) Predicate(g *graph.Graph) (bool, error) { return d.Pred(g) }
