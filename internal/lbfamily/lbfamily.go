// Package lbfamily implements the paper's central abstraction, the family
// of lower bound graphs (Definition 1.1), and makes Theorem 1.1 executable:
//
//   - A Family builds the graph G_{x,y} for any input pair and exposes the
//     fixed Alice/Bob vertex partition and the predicate P.
//   - Verify checks conditions 1-4 of Definition 1.1 exhaustively (all
//     2^K x 2^K input pairs) using an exact solver as the predicate oracle;
//     VerifySampled spot-checks larger parameters.
//   - Families whose instances are a fixed skeleton plus O(1) edges per
//     input bit can opt into DeltaFamily: verification then walks the input
//     cube in Gray-code order and pays O(delta) per pair instead of
//     rebuilding, re-freezing and re-hashing every G_{x,y} from scratch.
//   - ImpliedLowerBound evaluates the Theorem 1.1 round bound
//     Ω(CC(f) / (|E_cut| log n)) from the measured family parameters.
//   - SimulateTwoParty runs a CONGEST algorithm on G_{x,y} with the cut
//     metered, realizing the Alice-Bob simulation that proves Theorem 1.1.
package lbfamily

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"congesthard/internal/comm"
	"congesthard/internal/congest"
	"congesthard/internal/graph"
)

// Family is a family of lower bound graphs {G_{x,y}} with respect to a
// two-party function f and a graph predicate P (Definition 1.1).
type Family interface {
	// Name identifies the family, e.g. "mds".
	Name() string
	// K is the input length per player.
	K() int
	// Func is the function f the family reduces from. By Definition 1.1
	// condition 4, Predicate(Build(x,y)) must equal Func().Eval(x,y).
	Func() comm.Function
	// Build constructs G_{x,y}.
	Build(x, y comm.Bits) (*graph.Graph, error)
	// AliceSide marks V_A in the (input-independent) vertex set.
	AliceSide() []bool
	// Predicate decides P exactly (it may be expensive; it is the
	// verification oracle, not part of the construction).
	Predicate(g *graph.Graph) (bool, error)
}

// Input-bit owners for DeltaFamily.ApplyBit.
const (
	// PlayerX marks a bit of Alice's input x.
	PlayerX = 0
	// PlayerY marks a bit of Bob's input y.
	PlayerY = 1
)

// DeltaFamily is the incremental-construction extension of Family for
// "pure bit gadget" constructions: G_{x,y} is a fixed skeleton (BuildBase,
// the all-zeros instance G_{0,0}) plus a bounded set of edges attached to
// each input bit. ApplyBit toggles exactly those edges, so the exhaustive
// verifier can walk the 2^(2K) input pairs in Gray-code order and update
// one instance graph in O(delta) per pair.
//
// Contract: ApplyBit(g, player, bit, val) transforms the instance graph of
// an input whose (player, bit) is !val into the instance graph where it is
// val, mutating edges and vertex weights only (no vertex additions) and
// only through ToggleEdge/SetEdgeWeight/SetVertexWeight, so the graph's
// mutation journals capture the delta. Before taking the delta path, Verify
// spot-checks the surface: BuildBase plus ApplyBit over every bit must
// reproduce Build's all-ones instance hash-for-hash, else it falls back
// to rebuilding every pair. Exhaustive pair-for-pair agreement of the two
// paths is asserted by the package's differential tests for the in-repo
// families.
type DeltaFamily interface {
	Family
	// BuildBase constructs the all-zeros instance G_{0,0}.
	BuildBase() (*graph.Graph, error)
	// ApplyBit applies the change of one input bit to val.
	ApplyBit(g *graph.Graph, player, bit int, val bool) error
}

// PredicateOracle is a reusable predicate evaluator (typically wrapping an
// arena-backed solver oracle) that a verification worker holds across many
// pairs so predicate evaluation stops paying per-call allocation.
type PredicateOracle interface {
	Eval(g *graph.Graph) (bool, error)
}

// OracleFamily is implemented by families whose predicate can be evaluated
// through a reusable per-worker oracle. NewPredicateOracle must return an
// oracle whose verdicts (and errors) match Predicate exactly.
type OracleFamily interface {
	Family
	NewPredicateOracle() PredicateOracle
}

// DigraphFamily is the directed-graph analogue of Family, used by the
// Hamiltonian path and directed Steiner constructions.
type DigraphFamily interface {
	Name() string
	K() int
	Func() comm.Function
	Build(x, y comm.Bits) (*graph.Digraph, error)
	AliceSide() []bool
	Predicate(d *graph.Digraph) (bool, error)
}

// Stats are the measured parameters of a family that determine the
// Theorem 1.1 bound.
type Stats struct {
	N       int // vertices in G_{x,y} (fixed across inputs)
	M       int // edges of the all-zero instance
	CutSize int // |E_cut|
	K       int // input bits per player
}

// MeasureStats builds the all-zeros instance and reports its parameters.
func MeasureStats(fam Family) (Stats, error) {
	zero := comm.NewBits(fam.K())
	g, err := fam.Build(zero, zero)
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		N:       g.N(),
		M:       g.M(),
		CutSize: len(g.CutEdges(fam.AliceSide())),
		K:       fam.K(),
	}, nil
}

// ImpliedLowerBound evaluates Theorem 1.1: a family w.r.t. f yields a round
// lower bound of Ω(CC(f) / (|E_cut| log n)). CC(f) is taken from the known
// complexity table (DISJ and EQ and their negations); the result drops
// constant factors.
func ImpliedLowerBound(stats Stats, f comm.Function) (float64, error) {
	cc, ok := comm.KnownDeterministicCC(f, stats.K)
	if !ok {
		return 0, fmt.Errorf("no known complexity for function %s", f.Name())
	}
	if stats.CutSize == 0 || stats.N < 2 {
		return 0, fmt.Errorf("degenerate family stats: %+v", stats)
	}
	return cc / (float64(stats.CutSize) * math.Log2(float64(stats.N))), nil
}

// Verify checks Definition 1.1 exhaustively for all input pairs; it
// requires K <= 12 (2^(2K) predicate evaluations). It checks:
//
//  1. the vertex set (count and order) is fixed;
//  2. for fixed y, varying x changes nothing in G[V_B] nor the cut;
//  3. symmetrically for x;
//  4. Predicate(G_{x,y}) == f(x, y) for every pair.
//
// Families implementing DeltaFamily are verified delta-driven: each worker
// walks its column shard in Gray-code order over x for fixed y, toggling
// only the changed bit's edges between pairs. Everything observable — the
// checks, the first-error choice and its message — is identical to the
// rebuild-every-pair path, which remains the transparent fallback.
func Verify(fam Family) error { return VerifyCtx(context.Background(), fam) }

// VerifyCtx is Verify with cancellation: when ctx is cancelled (or its
// deadline passes) mid-sweep, the workers drain promptly and the call
// returns a *CancelledError carrying the completed/total pair counts
// instead of running the remaining pairs to completion. A panic inside a
// worker is confined to its pair and surfaces as a *PanicError naming the
// (x, y) pair.
func VerifyCtx(ctx context.Context, fam Family) error {
	k := fam.K()
	if k > 12 {
		return fmt.Errorf("exhaustive verification limited to K <= 12, got %d (use VerifySampled)", k)
	}
	inputs := make([]comm.Bits, 0, 1<<uint(k))
	if err := comm.AllBits(k, func(b comm.Bits) { inputs = append(inputs, b.Clone()) }); err != nil {
		return err
	}
	return verifyOverMode(ctx, fam, inputs, inputs, false)
}

// VerifySampled checks Definition 1.1 on up to trials distinct random
// input pairs plus the all-zeros and all-ones corners (random draws are
// deduplicated — a repeated string would only re-run identical predicate
// evaluations). Structural conditions (1-3) are checked pairwise across
// the sample.
func VerifySampled(fam Family, rng *rand.Rand, trials int) error {
	return VerifySampledCtx(context.Background(), fam, rng, trials)
}

// VerifySampledCtx is VerifySampled with cancellation, like VerifyCtx.
func VerifySampledCtx(ctx context.Context, fam Family, rng *rand.Rand, trials int) error {
	inputs := sampledInputs(fam.K(), rng, trials)
	return verifyOverMode(ctx, fam, inputs, inputs, false)
}

// sampledInputs draws the shared sampled-verification input set: the
// all-zeros and all-ones corners plus up to trials distinct random k-bit
// strings (duplicates are discarded — re-running an identical input adds
// no coverage). Both the undirected and directed sampled verifiers use it.
func sampledInputs(k int, rng *rand.Rand, trials int) []comm.Bits {
	ones := comm.OnesBits(k)
	inputs := []comm.Bits{comm.NewBits(k), ones}
	seen := map[string]bool{inputs[0].String(): true, ones.String(): true}
	for i := 0; i < trials; i++ {
		b := comm.RandomBits(k, rng)
		if key := b.String(); !seen[key] {
			seen[key] = true
			inputs = append(inputs, b)
		}
	}
	return inputs
}

// pairOutcome is the per-(x, y) result computed by a verification worker:
// build/predicate errors, the vertex count, 64-bit structural hashes of the
// cut and of the two induced sides, and the predicate's verdict. The cheap
// serial pass over these outcomes reproduces exactly the checks (and error
// messages) of the old serial verifier, in the same row-major order.
type pairOutcome struct {
	buildErr error
	predErr  error
	panicErr *PanicError
	n        int
	cutHash  uint64
	aHash    uint64
	bHash    uint64
	got      bool
}

// verifyWorkers returns the worker count for a pair workload.
func verifyWorkers(total int) int {
	w := runtime.GOMAXPROCS(0)
	if w > total {
		w = total
	}
	if w < 1 {
		w = 1
	}
	return w
}

// computePairs runs compute for every pair index across a worker pool and
// returns the recorded outcomes plus the number of pairs fully computed.
// compute fills outcomes[idx] and reports whether the pair succeeded;
// after a failure, workers skip pairs that come later in row-major order
// (the serial scan never reads past the first failing pair, which is
// always fully computed). A cancelled ctx stops workers from claiming new
// pairs; in-flight pairs finish, so the completed count stays consistent.
// A panic inside compute is confined to its pair and recorded as that
// outcome's panicErr.
func computePairs(ctx context.Context, total int, compute func(idx int64, out *pairOutcome) bool) ([]pairOutcome, int) {
	outcomes := make([]pairOutcome, total)
	var nextIdx, minErr, completed atomic.Int64
	minErr.Store(int64(total))
	var wg sync.WaitGroup
	for w := verifyWorkers(total); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				idx := nextIdx.Add(1) - 1
				if idx >= int64(total) {
					return
				}
				if idx > minErr.Load() {
					continue
				}
				if !safeCompute(compute, idx, &outcomes[idx]) {
					storeMin(&minErr, idx)
				}
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	return outcomes, int(completed.Load())
}

// safeCompute runs compute with panic confinement: a panic is recorded as
// the pair's panicErr (with the stack captured at the panic site) and
// treated as a pair failure rather than crashing the sweep.
func safeCompute(compute func(idx int64, out *pairOutcome) bool, idx int64, out *pairOutcome) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			out.panicErr = &PanicError{Value: r, Stack: debug.Stack()}
			ok = false
		}
	}()
	return compute(idx, out)
}

// sweepCancelled translates an interrupted phase 1 into a CancelledError;
// a sweep that computed every pair before the context fired is complete
// and scans normally.
func sweepCancelled(ctx context.Context, completed, total int) error {
	if err := ctx.Err(); err != nil && completed < total {
		return &CancelledError{Completed: completed, Total: total, Err: err}
	}
	return nil
}

func verifyOverMode(ctx context.Context, fam Family, xs, ys []comm.Bits, forceRebuild bool) error {
	side, err := familySide(fam)
	if err != nil {
		return fmt.Errorf("alice side: %w", err)
	}
	total := len(xs) * len(ys)
	if total == 0 {
		return nil
	}
	outcomes, completed, _ := collectOutcomes(ctx, fam, side, xs, ys, forceRebuild)
	if err := sweepCancelled(ctx, completed, total); err != nil {
		return err
	}
	return scanOutcomes(fam, side, xs, ys, outcomes)
}

// familySide returns the family's Alice side, surfacing the underlying
// build error for families (DerivedFamily) that must build an instance to
// learn their partition.
func familySide(fam Family) ([]bool, error) {
	if checked, ok := fam.(interface{ AliceSideChecked() ([]bool, error) }); ok {
		return checked.AliceSideChecked()
	}
	return fam.AliceSide(), nil
}

// collectOutcomes is verification phase 1: it computes every pair's
// outcome, delta-driven when the family opts in (and the delta machinery
// encounters no unexpected failure), rebuilding every instance otherwise.
// It also reports the number of pairs fully computed (less than the total
// only under cancellation) and whether the delta path produced the
// outcomes. A cancelled delta sweep does NOT fall back to the rebuild
// path — the interruption is the caller's to report.
func collectOutcomes(ctx context.Context, fam Family, side []bool, xs, ys []comm.Bits, forceRebuild bool) ([]pairOutcome, int, bool) {
	bobSide := make([]bool, len(side))
	for i, a := range side {
		bobSide[i] = !a
	}
	if !forceRebuild {
		if df, ok := fam.(DeltaFamily); ok {
			if outcomes, completed, ok := computePairsDelta(ctx, df, side, bobSide, xs, ys); ok {
				return outcomes, completed, true
			}
		}
	}
	total := len(xs) * len(ys)
	outcomes, completed := computePairs(ctx, total, func(idx int64, out *pairOutcome) bool {
		x, y := xs[idx/int64(len(ys))], ys[idx%int64(len(ys))]
		g, err := fam.Build(x, y)
		if err != nil {
			out.buildErr = err
			return false
		}
		out.n = g.N()
		if out.n != len(side) {
			// Condition 1 violation; the serial pass reports it before
			// any hash of this pair is consulted.
			return false
		}
		out.cutHash = g.CutHash(side)
		out.aHash = g.HashWithin(side)
		out.bHash = g.HashWithin(bobSide)
		out.got, out.predErr = fam.Predicate(g)
		return out.predErr == nil
	})
	return outcomes, completed, false
}

// computePairsDelta is the delta-driven phase 1: each worker owns one
// mutable instance graph built once from BuildBase, claims columns (fixed
// y) and walks x across each column in Gray-code order, applying only the
// changed bits through ApplyBit and folding the journaled edge deltas into
// incrementally maintained cut/side hashes. Any unexpected failure of the
// delta machinery (base build or ApplyBit error) reports ok = false and
// the caller transparently falls back to the rebuild path, whose error
// reporting is the historical reference.
func computePairsDelta(ctx context.Context, df DeltaFamily, side, bobSide []bool, xs, ys []comm.Bits) ([]pairOutcome, int, bool) {
	if !deltaSurfaceConsistent(df, side, bobSide) {
		return nil, 0, false
	}
	total := len(xs) * len(ys)
	order := walkOrder(xs, df.K())
	outcomes := make([]pairOutcome, total)
	var nextCol, minErr, completed atomic.Int64
	minErr.Store(int64(total))
	ok := atomic.Bool{}
	ok.Store(true)
	var wg sync.WaitGroup
	for w := verifyWorkers(len(ys)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A panic outside predicate evaluation (BuildBase, ApplyBit,
			// journal folding) abandons the delta path; the rebuild
			// fallback recomputes every pair with per-pair confinement.
			defer func() {
				if r := recover(); r != nil {
					ok.Store(false)
				}
			}()
			if !deltaWorker(ctx, df, side, bobSide, xs, ys, order, outcomes, &nextCol, &minErr, &completed) {
				ok.Store(false)
			}
		}()
	}
	wg.Wait()
	return outcomes, int(completed.Load()), ok.Load()
}

// deltaSurfaceConsistent spot-checks the DeltaFamily contract before the
// delta path is trusted: BuildBase plus ApplyBit(val = true) over every
// bit of both players must reproduce Build's all-ones instance — same
// vertex count, same cut hash, same induced-side hashes. This exercises
// every bit's attached edges once for the cost of two builds; a family
// whose ApplyBit disagrees with Build falls back to the rebuild path (as
// does a family whose base build fails, so the rebuild path reports its
// historical error).
func deltaSurfaceConsistent(df DeltaFamily, side, bobSide []bool) bool {
	k := df.K()
	ones := comm.OnesBits(k)
	want, err := df.Build(ones, ones)
	if err != nil || want == nil || want.N() != len(side) {
		return false
	}
	g, err := df.BuildBase()
	if err != nil || g == nil || g.N() != len(side) {
		return false
	}
	for _, player := range [2]int{PlayerX, PlayerY} {
		for i := 0; i < k; i++ {
			if err := df.ApplyBit(g, player, i, true); err != nil {
				return false
			}
		}
	}
	return g.CutHash(side) == want.CutHash(side) &&
		g.HashWithin(side) == want.HashWithin(side) &&
		g.HashWithin(bobSide) == want.HashWithin(bobSide)
}

// deltaWorker claims columns until none remain or ctx fires. It reports
// false when the delta machinery itself failed and the caller must fall
// back; cancellation is NOT a failure (returning true keeps the partial
// outcomes, which the caller reports as a CancelledError).
//
//hardness:hotpath
func deltaWorker(ctx context.Context, df DeltaFamily, side, bobSide []bool, xs, ys []comm.Bits, order []int, outcomes []pairOutcome, nextCol, minErr, completed *atomic.Int64) bool {
	k := df.K()
	g, err := df.BuildBase()
	if err != nil || g == nil || g.N() != len(side) {
		return false
	}
	g.FreezePatchable()
	g.StartJournal()
	curX, curY := comm.NewBits(k), comm.NewBits(k)
	cutH := g.CutHash(side)
	aH := g.HashWithin(side)
	bH := g.HashWithin(bobSide)
	n := g.N()
	eval := df.Predicate
	if of, ok := Family(df).(OracleFamily); ok {
		eval = of.NewPredicateOracle().Eval
	}

	// applyDiff toggles the bits on which cur and target differ and folds
	// the journaled edge and vertex-weight deltas into the three running
	// hashes: O(1) per delta, versus the O(|V|+|E|) rebuild-freeze-rehash
	// per pair of the fallback path.
	applyDiff := func(player int, cur, target comm.Bits) error {
		var applyErr error
		cur.ForEachDiff(target, func(i int) bool {
			if err := df.ApplyBit(g, player, i, target.Get(i)); err != nil {
				applyErr = err
				return false
			}
			cur.Set(i, target.Get(i))
			return true
		})
		if applyErr != nil {
			return applyErr
		}
		// One toggle's journal: O(attached edges), cannot block; the
		// claiming loop checks ctx once per pair.
		for _, d := range g.Journal() { //nolint:hardlint/ctxflow bounded per-toggle fold; ctx checked per pair
			h := graph.EdgeHash(d.U, d.V, d.W)
			switch {
			case side[d.U] != side[d.V]:
				cutH ^= h
			case side[d.U]:
				aH ^= h
			default:
				bH ^= h
			}
		}
		// Vertex weights contribute to the induced-side hashes only; the
		// cut hash is a pure edge fold.
		for _, d := range g.VertexJournal() { //nolint:hardlint/ctxflow bounded per-toggle fold; ctx checked per pair
			h := graph.VertexHash(d.V, d.W)
			if side[d.V] {
				aH ^= h
			} else {
				bH ^= h
			}
		}
		g.ClearJournal()
		return nil
	}

	// evalInto runs the predicate with panic confinement: a panic becomes
	// the pair's panicErr instead of abandoning the delta path, since it
	// would recur identically under the rebuild fallback.
	evalInto := func(out *pairOutcome) {
		defer func() {
			if r := recover(); r != nil {
				out.panicErr = &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		out.got, out.predErr = eval(g)
	}

	for {
		if ctx.Err() != nil {
			return true // cancelled, not broken: keep the partial outcomes
		}
		yi := int(nextCol.Add(1) - 1)
		if yi >= len(ys) {
			return true
		}
		if err := applyDiff(PlayerY, curY, ys[yi]); err != nil {
			return false
		}
		for _, xi := range order {
			if ctx.Err() != nil {
				return true
			}
			if err := applyDiff(PlayerX, curX, xs[xi]); err != nil {
				return false
			}
			idx := int64(xi)*int64(len(ys)) + int64(yi)
			out := &outcomes[idx]
			out.n = n
			out.cutHash, out.aHash, out.bHash = cutH, aH, bH
			if idx > minErr.Load() {
				continue // a pair earlier in row-major order already failed
			}
			evalInto(out)
			if out.predErr != nil || out.panicErr != nil {
				storeMin(minErr, idx)
			}
			completed.Add(1)
		}
	}
}

// walkOrder returns the sequence of xs indices a delta worker visits per
// column. When xs is the canonical AllBits enumeration (xs[i] encodes the
// integer i), the reflected Gray code i XOR i>>1 visits every input with
// exactly one bit toggled between consecutive visits; otherwise (sampled
// verification) the sample order is kept and each step toggles the
// Hamming distance between consecutive samples.
func walkOrder(xs []comm.Bits, k int) []int {
	order := make([]int, len(xs))
	if k <= 24 && len(xs) == 1<<uint(k) && canonicalCube(xs, k) {
		for s := range order {
			order[s] = s ^ (s >> 1)
		}
		return order
	}
	for i := range order {
		order[i] = i
	}
	return order
}

// canonicalCube reports whether xs[i] encodes the integer i for all i.
func canonicalCube(xs []comm.Bits, k int) bool {
	for i, x := range xs {
		want, err := comm.BitsFromUint64(k, uint64(i))
		if err != nil || !x.Equal(want) {
			return false
		}
	}
	return true
}

// scanOutcomes is verification phase 2: the serial row-major scan,
// identical in order and messages to the historical serial verifier.
func scanOutcomes(fam Family, side []bool, xs, ys []comm.Bits, outcomes []pairOutcome) error {
	f := fam.Func()
	wantN := -1
	var cutHash uint64
	cutSeen := false
	bByY := make([]uint64, len(ys))
	bSeen := make([]bool, len(ys))
	aByX := make([]uint64, len(xs))
	aSeen := make([]bool, len(xs))
	for xi, x := range xs {
		for yi, y := range ys {
			out := &outcomes[xi*len(ys)+yi]
			if out.panicErr != nil {
				// Checked before the structural conditions: a pair that
				// panicked mid-compute has no meaningful n or hashes.
				out.panicErr.X, out.panicErr.Y = x, y
				return out.panicErr
			}
			if out.buildErr != nil {
				return fmt.Errorf("build(%s,%s): %w", x, y, out.buildErr)
			}
			if wantN == -1 {
				wantN = out.n
				if len(side) != wantN {
					return fmt.Errorf("AliceSide has %d entries for %d vertices", len(side), wantN)
				}
			}
			if out.n != wantN {
				return fmt.Errorf("condition 1 violated: vertex count %d != %d at (%s,%s)", out.n, wantN, x, y)
			}
			if !cutSeen {
				cutHash = out.cutHash
				cutSeen = true
			} else if out.cutHash != cutHash {
				return fmt.Errorf("cut edges changed with input at (%s,%s)", x, y)
			}
			if bSeen[yi] && bByY[yi] != out.bHash {
				return fmt.Errorf("condition 2 violated: G[V_B] changed with x at (%s,%s)", x, y)
			}
			bByY[yi], bSeen[yi] = out.bHash, true
			if aSeen[xi] && aByX[xi] != out.aHash {
				return fmt.Errorf("condition 3 violated: G[V_A] changed with y at (%s,%s)", x, y)
			}
			aByX[xi], aSeen[xi] = out.aHash, true
			if out.predErr != nil {
				return fmt.Errorf("predicate at (%s,%s): %w", x, y, out.predErr)
			}
			want := f.Eval(x, y)
			if out.got != want {
				return fmt.Errorf("condition 4 violated at (x=%s, y=%s): P=%v but %s=%v", x, y, out.got, f.Name(), want)
			}
		}
	}
	return nil
}

// storeMin lowers m to idx if idx is smaller.
func storeMin(m *atomic.Int64, idx int64) {
	for {
		cur := m.Load()
		if idx >= cur || m.CompareAndSwap(cur, idx) {
			return
		}
	}
}

// SimulateTwoParty runs a CONGEST algorithm on G_{x,y} with Alice
// simulating V_A and Bob V_B, metering the bits that cross the cut. This is
// the simulation at the heart of Theorem 1.1: a T-round algorithm yields a
// protocol exchanging at most 2*T*|E_cut|*B bits.
func SimulateTwoParty(fam Family, x, y comm.Bits, factory congest.Factory) (*congest.Result, error) {
	g, err := fam.Build(x, y)
	if err != nil {
		return nil, err
	}
	return congest.Run(g, factory, congest.Options{CutSide: fam.AliceSide()})
}

// DerivedFamily implements Theorem 2.6 (reductions between families of
// lower bound graphs): it transforms every graph of an inner family with a
// fixed, input-oblivious transformation and replaces the predicate. If the
// transformation maps V_A-local structure to V'_A-local structure (and
// symmetrically) — which Verify re-checks from scratch — the derived family
// is again a family of lower bound graphs.
type DerivedFamily struct {
	// Inner is the source family (P1 in Theorem 2.6).
	Inner Family
	// FamilyName names the derived family.
	FamilyName string
	// Transform maps G_{x,y} and the inner Alice side to the derived graph
	// and its Alice side. It must be deterministic and input-oblivious.
	Transform func(g *graph.Graph, aliceSide []bool) (*graph.Graph, []bool, error)
	// Pred decides the derived predicate P2.
	Pred func(g *graph.Graph) (bool, error)
	// F overrides the function; nil keeps the inner family's function.
	F comm.Function

	// The derived side is input-oblivious, so it is learned exactly once
	// from the all-zeros instance.
	sideOnce   sync.Once
	cachedSide []bool
	sideErr    error
}

var _ Family = (*DerivedFamily)(nil)

// Name returns the derived family's name.
func (d *DerivedFamily) Name() string { return d.FamilyName }

// K returns the inner family's input length.
func (d *DerivedFamily) K() int { return d.Inner.K() }

// Func returns the override function or the inner one.
func (d *DerivedFamily) Func() comm.Function {
	if d.F != nil {
		return d.F
	}
	return d.Inner.Func()
}

// Build builds the inner graph and applies the transformation.
func (d *DerivedFamily) Build(x, y comm.Bits) (*graph.Graph, error) {
	g, err := d.Inner.Build(x, y)
	if err != nil {
		return nil, err
	}
	out, _, err := d.Transform(g, d.Inner.AliceSide())
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AliceSideChecked returns the derived partition, building the all-zeros
// instance once (guarded by sync.Once) to learn it, and surfaces the build
// or transform error instead of silently returning nil.
func (d *DerivedFamily) AliceSideChecked() ([]bool, error) {
	d.sideOnce.Do(func() {
		zero := comm.NewBits(d.K())
		g, err := d.Inner.Build(zero, zero)
		if err != nil {
			d.sideErr = err
			return
		}
		_, side, err := d.Transform(g, d.Inner.AliceSide())
		if err != nil {
			d.sideErr = err
			return
		}
		d.cachedSide = side
	})
	return d.cachedSide, d.sideErr
}

// AliceSide returns the derived partition (building the zero instance once
// if needed to learn it); nil if that build fails — use AliceSideChecked
// for the error.
func (d *DerivedFamily) AliceSide() []bool {
	side, _ := d.AliceSideChecked()
	return side
}

// Predicate decides the derived predicate.
func (d *DerivedFamily) Predicate(g *graph.Graph) (bool, error) { return d.Pred(g) }
