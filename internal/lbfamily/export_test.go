package lbfamily

import (
	"context"
	"fmt"

	"congesthard/internal/comm"
)

// OutcomeForTest is the exported projection of a pairOutcome, so external
// differential tests can compare the delta and rebuild phase-1 paths
// pair for pair.
type OutcomeForTest struct {
	N                     int
	CutHash, AHash, BHash uint64
	Got                   bool
	BuildErr, PredErr     error
}

// CollectOutcomesForTest runs verification phase 1 over xs × ys — in
// delta-with-fallback mode (forceRebuild = false) or forced rebuild mode —
// and returns the row-major outcomes plus whether the delta path produced
// them.
func CollectOutcomesForTest(fam Family, xs, ys []comm.Bits, forceRebuild bool) ([]OutcomeForTest, bool, error) {
	side, err := familySide(fam)
	if err != nil {
		return nil, false, err
	}
	outcomes, _, delta := collectOutcomes(context.Background(), fam, side, xs, ys, forceRebuild)
	views := make([]OutcomeForTest, len(outcomes))
	for i, o := range outcomes {
		views[i] = OutcomeForTest{
			N: o.n, CutHash: o.cutHash, AHash: o.aHash, BHash: o.bHash,
			Got: o.got, BuildErr: o.buildErr, PredErr: o.predErr,
		}
	}
	return views, delta, nil
}

// VerifyRebuild is Verify with the delta path disabled; differential tests
// compare its first error byte for byte against the delta path's.
func VerifyRebuild(fam Family) error {
	k := fam.K()
	if k > 12 {
		return fmt.Errorf("exhaustive verification limited to K <= 12, got %d (use VerifySampled)", k)
	}
	inputs := make([]comm.Bits, 0, 1<<uint(k))
	if err := comm.AllBits(k, func(b comm.Bits) { inputs = append(inputs, b.Clone()) }); err != nil {
		return err
	}
	return verifyOverMode(context.Background(), fam, inputs, inputs, true)
}

// CollectDigraphOutcomesForTest is CollectOutcomesForTest for directed
// families: phase 1 over xs × ys, delta-with-fallback or forced rebuild.
func CollectDigraphOutcomesForTest(fam DigraphFamily, xs, ys []comm.Bits, forceRebuild bool) ([]OutcomeForTest, bool, error) {
	outcomes, _, delta := collectDigraphOutcomes(context.Background(), fam, fam.AliceSide(), xs, ys, forceRebuild)
	views := make([]OutcomeForTest, len(outcomes))
	for i, o := range outcomes {
		views[i] = OutcomeForTest{
			N: o.n, CutHash: o.cutHash, AHash: o.aHash, BHash: o.bHash,
			Got: o.got, BuildErr: o.buildErr, PredErr: o.predErr,
		}
	}
	return views, delta, nil
}

// VerifyDigraphRebuild is VerifyDigraph with the delta path disabled;
// differential tests compare its first error byte for byte against the
// delta path's.
func VerifyDigraphRebuild(fam DigraphFamily) error {
	k := fam.K()
	if k > 12 {
		return fmt.Errorf("exhaustive verification limited to K <= 12, got %d (use VerifySampledDigraph)", k)
	}
	inputs := make([]comm.Bits, 0, 1<<uint(k))
	if err := comm.AllBits(k, func(b comm.Bits) { inputs = append(inputs, b.Clone()) }); err != nil {
		return err
	}
	return verifyDigraphOverMode(context.Background(), fam, inputs, inputs, true)
}
