package lbfamily_test

import (
	"fmt"
	"strings"
	"testing"

	"congesthard/internal/comm"
	"congesthard/internal/constructions/apxmaxislb"
	"congesthard/internal/constructions/boundedlb"
	"congesthard/internal/constructions/kmdslb"
	"congesthard/internal/constructions/maxcutlb"
	"congesthard/internal/constructions/mdslb"
	"congesthard/internal/constructions/mvclb"
	"congesthard/internal/constructions/steinerlb"
	"congesthard/internal/cover"
	"congesthard/internal/graph"
	"congesthard/internal/lbfamily"
)

func allInputs(t *testing.T, k int) []comm.Bits {
	t.Helper()
	inputs := make([]comm.Bits, 0, 1<<uint(k))
	if err := comm.AllBits(k, func(b comm.Bits) { inputs = append(inputs, b.Clone()) }); err != nil {
		t.Fatal(err)
	}
	return inputs
}

func deltaFamilies(t *testing.T) []lbfamily.Family {
	t.Helper()
	mds, err := mdslb.New(2)
	if err != nil {
		t.Fatal(err)
	}
	cut, err := maxcutlb.New(2)
	if err != nil {
		t.Fatal(err)
	}
	mvc, err := mvclb.New(2)
	if err != nil {
		t.Fatal(err)
	}
	apx, err := apxmaxislb.New(apxmaxislb.Params{K: 2, L: 2, T: 1})
	if err != nil {
		t.Fatal(err)
	}
	steiner, err := steinerlb.New(2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cover.Find(4, 12, 2, 7, 500)
	if err != nil {
		t.Fatal(err)
	}
	p := kmdslb.Params{Collection: c, R: 2}
	twoMDS, err := kmdslb.NewTwoMDS(p)
	if err != nil {
		t.Fatal(err)
	}
	kmds, err := kmdslb.NewKMDS(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	nodeSteiner, err := kmdslb.NewNodeSteiner(p)
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := boundedlb.NewFamily(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	return []lbfamily.Family{mds, cut, mvc, apx, steiner, twoMDS, kmds, nodeSteiner, bounded}
}

// TestDeltaMatchesRebuildPairForPair is the differential contract of the
// incremental verifier: for every opted-in family, the Gray-code delta
// walk and the rebuild-from-scratch path must agree on every pair's
// structural hashes and predicate verdict.
func TestDeltaMatchesRebuildPairForPair(t *testing.T) {
	for _, fam := range deltaFamilies(t) {
		fam := fam
		t.Run(fam.Name(), func(t *testing.T) {
			if testing.Short() && fam.Name() == "apx-maxis" {
				t.Skip("weighted MaxIS differential pass is slow")
			}
			if _, ok := fam.(lbfamily.DeltaFamily); !ok {
				t.Fatal("family does not implement DeltaFamily")
			}
			xs := allInputs(t, fam.K())
			got, usedDelta, err := lbfamily.CollectOutcomesForTest(fam, xs, xs, false)
			if err != nil {
				t.Fatal(err)
			}
			if !usedDelta {
				t.Fatal("delta path fell back to rebuild")
			}
			want, usedDelta, err := lbfamily.CollectOutcomesForTest(fam, xs, xs, true)
			if err != nil {
				t.Fatal(err)
			}
			if usedDelta {
				t.Fatal("forced rebuild still used the delta path")
			}
			for i := range want {
				x, y := xs[i/len(xs)], xs[i%len(xs)]
				g, w := got[i], want[i]
				if g.BuildErr != nil || w.BuildErr != nil || g.PredErr != nil || w.PredErr != nil {
					t.Fatalf("(%s,%s): unexpected errors %v %v %v %v", x, y, g.BuildErr, w.BuildErr, g.PredErr, w.PredErr)
				}
				if g.N != w.N {
					t.Fatalf("(%s,%s): n = %d, rebuild %d", x, y, g.N, w.N)
				}
				if g.CutHash != w.CutHash || g.AHash != w.AHash || g.BHash != w.BHash {
					t.Fatalf("(%s,%s): hashes diverge: delta (%x,%x,%x) rebuild (%x,%x,%x)",
						x, y, g.CutHash, g.AHash, g.BHash, w.CutHash, w.AHash, w.BHash)
				}
				if g.Got != w.Got {
					t.Fatalf("(%s,%s): predicate verdict %v, rebuild %v", x, y, g.Got, w.Got)
				}
			}
		})
	}
}

// condition4Broken deliberately breaks Definition 1.1 condition 4 by
// claiming the family reduces from DISJ instead of ¬DISJ, while keeping
// the delta surface (BuildBase/ApplyBit, promoted from the embedded
// family) perfectly consistent with Build.
type condition4Broken struct {
	*mdslb.Family
}

func (condition4Broken) Func() comm.Function { return comm.Disjointness{} }

// toyDelta is a K=1 family with an optional deliberate condition-2 break
// that Build and ApplyBit implement consistently: vertices 0,1 are
// Alice's, 2,3,4 Bob's; {1,2} is the fixed cut edge; x toggles {0,1}, y
// toggles {2,3}, and with breakB set x also toggles Bob's edge {3,4}.
// With inconsistentApply set, ApplyBit silently drops Alice's toggle —
// a broken delta surface that Verify's spot-check must detect.
type toyDelta struct {
	breakB            bool
	inconsistentApply bool
}

func (d *toyDelta) Name() string        { return "toy-delta" }
func (d *toyDelta) K() int              { return 1 }
func (d *toyDelta) Func() comm.Function { return comm.Negation{F: comm.Disjointness{}} }
func (d *toyDelta) AliceSide() []bool   { return []bool{true, true, false, false, false} }

func (d *toyDelta) Build(x, y comm.Bits) (*graph.Graph, error) {
	g := graph.New(5)
	g.MustAddEdge(1, 2)
	if x.Get(0) {
		g.MustAddEdge(0, 1)
		if d.breakB {
			g.MustAddEdge(3, 4)
		}
	}
	if y.Get(0) {
		g.MustAddEdge(2, 3)
	}
	return g, nil
}

func (d *toyDelta) BuildBase() (*graph.Graph, error) {
	return d.Build(comm.NewBits(1), comm.NewBits(1))
}

func (d *toyDelta) ApplyBit(g *graph.Graph, player, bit int, val bool) error {
	if bit != 0 {
		return fmt.Errorf("bit %d out of range", bit)
	}
	if player == lbfamily.PlayerX {
		if d.inconsistentApply {
			return nil // deliberately diverges from Build
		}
		if _, err := g.ToggleEdge(0, 1, 1); err != nil {
			return err
		}
		if d.breakB {
			if _, err := g.ToggleEdge(3, 4, 1); err != nil {
				return err
			}
		}
		return nil
	}
	_, err := g.ToggleEdge(2, 3, 1)
	return err
}

func (d *toyDelta) Predicate(g *graph.Graph) (bool, error) {
	return g.HasEdge(0, 1) && g.HasEdge(2, 3), nil
}

var _ lbfamily.DeltaFamily = (*toyDelta)(nil)

// TestDeltaFirstErrorMatchesRebuild asserts that on deliberately broken
// families the delta path reports the byte-identical first (row-major)
// error the rebuild path reports.
func TestDeltaFirstErrorMatchesRebuild(t *testing.T) {
	mds, err := mdslb.New(2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		fam  lbfamily.Family
		want string // substring naming the violated condition
	}{
		{name: "condition4", fam: condition4Broken{mds}, want: "condition 4"},
		{name: "condition2", fam: &toyDelta{breakB: true}, want: "condition 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			deltaErr := lbfamily.Verify(tc.fam)
			rebuildErr := lbfamily.VerifyRebuild(tc.fam)
			if deltaErr == nil || rebuildErr == nil {
				t.Fatalf("broken family accepted: delta=%v rebuild=%v", deltaErr, rebuildErr)
			}
			if deltaErr.Error() != rebuildErr.Error() {
				t.Fatalf("first errors differ:\n delta:   %s\n rebuild: %s", deltaErr, rebuildErr)
			}
			if got := deltaErr.Error(); !strings.Contains(got, tc.want) {
				t.Fatalf("error %q does not mention %q", got, tc.want)
			}
		})
	}
	// The unbroken toy delta family must verify cleanly on both paths.
	if err := lbfamily.Verify(&toyDelta{}); err != nil {
		t.Fatalf("correct toy delta family rejected: %v", err)
	}
	if err := lbfamily.VerifyRebuild(&toyDelta{}); err != nil {
		t.Fatalf("correct toy delta family rejected by rebuild path: %v", err)
	}
}

// TestInconsistentApplyBitFallsBack: a family whose ApplyBit disagrees
// with Build must not be verified through the delta path — the surface
// spot-check detects the divergence and verification transparently falls
// back to rebuilding every pair (where Build, being correct, passes).
func TestInconsistentApplyBitFallsBack(t *testing.T) {
	fam := &toyDelta{inconsistentApply: true}
	xs := allInputs(t, fam.K())
	if _, usedDelta, err := lbfamily.CollectOutcomesForTest(fam, xs, xs, false); err != nil {
		t.Fatal(err)
	} else if usedDelta {
		t.Fatal("inconsistent delta surface was not detected")
	}
	if err := lbfamily.Verify(fam); err != nil {
		t.Fatalf("fallback verification rejected a correct Build: %v", err)
	}
	// The consistent surface must keep the delta path.
	if _, usedDelta, err := lbfamily.CollectOutcomesForTest(&toyDelta{}, xs, xs, false); err != nil {
		t.Fatal(err)
	} else if !usedDelta {
		t.Fatal("consistent delta surface fell back")
	}
}

// TestDeltaVerifyAllocsPerPair is the allocation regression guard in the
// spirit of congest's TestRunSteadyStateDoesNotAllocate: delta-enabled
// exhaustive verification must stay O(1) allocations per input pair (the
// per-worker arenas amortize to ~1-2 marginal allocs/pair at k=2; the
// bound additionally leaves room for per-worker setup — base build plus
// oracle arena, paid once per worker, up to 16 workers on many-core
// machines — but not for per-pair rebuilds, which cost ~190 allocs/pair).
func TestDeltaVerifyAllocsPerPair(t *testing.T) {
	for _, newFam := range []func() (lbfamily.Family, error){
		func() (lbfamily.Family, error) { return mdslb.New(2) },
		func() (lbfamily.Family, error) { return maxcutlb.New(2) },
		func() (lbfamily.Family, error) {
			c, err := cover.Find(4, 12, 2, 7, 500)
			if err != nil {
				return nil, err
			}
			return kmdslb.NewTwoMDS(kmdslb.Params{Collection: c, R: 2})
		},
		func() (lbfamily.Family, error) { return boundedlb.NewFamily(2, 3) },
	} {
		fam, err := newFam()
		if err != nil {
			t.Fatal(err)
		}
		pairs := float64(int(1) << uint(2*fam.K()))
		allocs := testing.AllocsPerRun(3, func() {
			if err := lbfamily.Verify(fam); err != nil {
				t.Fatal(err)
			}
		})
		if perPair := allocs / pairs; perPair > 16 {
			t.Errorf("%s: %.1f allocs/pair (%.0f total for %.0f pairs), want <= 16",
				fam.Name(), perPair, allocs, pairs)
		}
	}
}
