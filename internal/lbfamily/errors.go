package lbfamily

import (
	"fmt"

	"congesthard/internal/comm"
)

// CancelledError reports a verification sweep interrupted by its context.
// Completed counts the input pairs whose outcomes were fully computed
// before the workers drained; the sweep's verdict on the remaining pairs
// is unknown. Unwrap yields the context's error, so errors.Is(err,
// context.Canceled) and context.DeadlineExceeded both work.
type CancelledError struct {
	Completed int
	Total     int
	Err       error
}

func (e *CancelledError) Error() string {
	return fmt.Sprintf("sweep cancelled after %d of %d pairs: %v", e.Completed, e.Total, e.Err)
}

// Unwrap exposes the underlying context error.
func (e *CancelledError) Unwrap() error { return e.Err }

// PanicError reports a panic recovered inside a verification worker while
// computing one input pair. The panic is confined to that pair: the sweep
// finishes its other pairs and the serial scan surfaces this error in the
// usual first-failure row-major position, naming the (x, y) pair instead
// of crashing the whole process.
type PanicError struct {
	X, Y  comm.Bits
	Value interface{}
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic at (x=%s, y=%s): %v", e.X, e.Y, e.Value)
}
