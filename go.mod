module congesthard

go 1.24
