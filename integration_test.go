package main_test

import (
	"math/rand"
	"testing"

	"congesthard/internal/algorithms"
	"congesthard/internal/comm"
	"congesthard/internal/congest"
	"congesthard/internal/constructions/maxcutlb"
	"congesthard/internal/constructions/mdslb"
	"congesthard/internal/constructions/mvclb"
	"congesthard/internal/graph"
	"congesthard/internal/lbfamily"
	"congesthard/internal/limits"
	"congesthard/internal/reduction"
	"congesthard/internal/solver"
)

// TestIntegrationExactAlgorithmDecidesFamilyPredicate closes the loop the
// paper's lower bounds are about: the generic O(m + D)-round
// collect-and-solve CONGEST algorithm decides the MDS family predicate
// correctly on sampled instances — demonstrating the upper bound that the
// Ω̃(n²) lower bound nearly matches.
func TestIntegrationExactAlgorithmDecidesFamilyPredicate(t *testing.T) {
	fam, err := mdslb.New(2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		x := comm.RandomBits(4, rng)
		y := comm.RandomBits(4, rng)
		g, err := fam.Build(x, y)
		if err != nil {
			t.Fatal(err)
		}
		res, err := algorithms.CollectAndSolve(g, func(gg *graph.Graph) (interface{}, error) {
			return solver.HasDominatingSetOfSize(gg, fam.TargetSize())
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Answer.(bool); got != x.Intersects(y) {
			t.Fatalf("collect-and-solve decided %v, want %v", got, x.Intersects(y))
		}
		// The upper bound shape: O(m + D) rounds.
		if res.Rounds > 4*g.N()+g.M() {
			t.Errorf("rounds %d above the O(m + D) budget", res.Rounds)
		}
	}
}

// TestIntegrationTheoremOneOneAccounting runs a real CONGEST program over
// the max-cut family with the cut metered and checks the Theorem 1.1
// inequality that powers every lower bound in the paper:
// bits across the cut <= 2 * rounds * |E_cut| * B.
func TestIntegrationTheoremOneOneAccounting(t *testing.T) {
	fam, err := maxcutlb.New(2)
	if err != nil {
		t.Fatal(err)
	}
	x := comm.NewBits(4)
	x.Set(2, true)
	const budget = 9
	factory := func(local congest.Local) congest.Node {
		best := int64(local.ID)
		return &congest.FuncNode{
			RoundFunc: func(round int, inbox []congest.Incoming) ([]congest.Message, bool) {
				for _, m := range inbox {
					if m.Payload < best {
						best = m.Payload
					}
				}
				if round >= budget {
					return nil, true
				}
				var out []congest.Message
				for _, nbr := range local.Neighbors {
					out = append(out, congest.Message{To: nbr, Payload: best})
				}
				return out, false
			},
			OutputFunc: func() interface{} { return best },
		}
	}
	res, err := lbfamily.SimulateTwoParty(fam, x, x, factory)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := lbfamily.MeasureStats(fam)
	if err != nil {
		t.Fatal(err)
	}
	budgetBits := int64(2*res.Rounds*stats.CutSize) * int64(res.BandwidthBits)
	if res.CutBits > budgetBits {
		t.Fatalf("cut bits %d exceed Theorem 1.1 budget %d", res.CutBits, budgetBits)
	}
	if res.CutBits == 0 {
		t.Fatal("no cut traffic metered")
	}
	// The flooding program must still be correct: everyone learns id 0.
	for v, out := range res.Outputs {
		if out.(int64) != 0 {
			t.Fatalf("vertex %d output %v", v, out)
		}
	}
}

// TestIntegrationLowerAndUpperBoundsBracket demonstrates the paper's
// overall landscape on one family: the implied round lower bound is below
// the collect-everything upper bound (they bracket the true complexity),
// and the Section 5 protocol sits far below both for the approximate
// problem.
func TestIntegrationLowerAndUpperBoundsBracket(t *testing.T) {
	fam, err := mdslb.New(4)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := lbfamily.MeasureStats(fam)
	if err != nil {
		t.Fatal(err)
	}
	lower, err := lbfamily.ImpliedLowerBound(stats, fam.Func())
	if err != nil {
		t.Fatal(err)
	}
	upper := float64(stats.M + 3*stats.N) // collect-and-solve round budget
	if !(lower < upper) {
		t.Fatalf("implied lower bound %v not below upper bound %v", lower, upper)
	}
	x := comm.NewBits(fam.K())
	x.Set(7, true)
	g, err := fam.Build(x, x)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := limits.TwoApproxMDS(g, fam.AliceSide())
	if err != nil {
		t.Fatal(err)
	}
	// The approximation protocol's bit cost corresponds to O(1) rounds of
	// cut traffic — far below the exact problem's quadratic demands.
	perRound := int64(2*stats.CutSize) * int64(congest.DefaultBandwidth(stats.N))
	if proto.Bits > 8*perRound {
		t.Errorf("2-approx protocol cost %d bits is not O(1) rounds worth (%d/round)", proto.Bits, perRound)
	}
}

// TestIntegrationCertifyPipeline composes all three prior layers — the
// zero-alloc simulator with its cut meter, the delta-driven family
// builders, and the solver oracles — into the reduction engine: Certify
// runs a real CONGEST algorithm over family input pairs, meters the
// two-party cut traffic, spot-checks the Theorem 1.1 simulation invariant
// by transcript replay, and flags approximate baselines that do not
// decide the predicate.
func TestIntegrationCertifyPipeline(t *testing.T) {
	fam, err := mdslb.New(2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := reduction.Certify(fam, reduction.CollectMDS(fam), reduction.Config{
		Seed: 1, Pairs: 10, TranscriptChecks: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatches != 0 {
		t.Errorf("exact collect misdecided %d/%d pairs", rep.Mismatches, len(rep.Pairs))
	}
	for _, p := range rep.Pairs {
		if p.CutBits > 2*int64(p.Rounds)*int64(rep.Bandwidth)*int64(rep.Stats.CutSize) {
			t.Errorf("pair (%s,%s) exceeds the Theorem 1.1 bound", p.X, p.Y)
		}
	}
	mvc, err := mvclb.New(2)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := reduction.Certify(mvc, reduction.MatchingMVC(mvc), reduction.Config{Seed: 1, Pairs: 12})
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Mismatches == 0 {
		t.Error("2-approximate matching cover decided every pair — the baseline gap vanished")
	}
}
