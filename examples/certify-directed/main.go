// Command certify-directed walks the directed reduction engine end to end
// on the Theorem 2.2 Hamiltonian path family: it certifies the exact
// collect-and-solve upper bound over every input pair through the
// dicongest simulator, shows the greedy path-walking heuristic being
// flagged as not deciding the predicate, and extracts one run's two-party
// transcript over the arc cut — Theorem 1.1 for the paper's directed
// constructions made concrete.
package main

import (
	"fmt"
	"log"

	"congesthard/internal/algorithms"
	"congesthard/internal/comm"
	"congesthard/internal/constructions/hamlb"
	"congesthard/internal/dicongest"
	"congesthard/internal/graph"
	"congesthard/internal/reduction"
)

func main() {
	fam, err := hamlb.New(2)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Certify the exact algorithm over all 2^(2K) = 256 pairs: every
	// run is a real directed CONGEST simulation (full-duplex links over
	// the arcs) with the Alice-Bob arc cut metered.
	rep, err := reduction.CertifyDigraph(fam, reduction.CollectHamPath(fam),
		reduction.Config{Seed: 1, TranscriptChecks: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collect-and-solve on the Hamiltonian path family: %d/%d pairs correct\n",
		len(rep.Pairs)-rep.Mismatches, len(rep.Pairs))
	fmt.Printf("  worst run: %d rounds, Theorem 1.1 budget 2*T*B*|E_cut| = %d bits >= CC(¬DISJ at K=%d) = %.0f\n",
		rep.MaxRounds, rep.SimBits, rep.Stats.K, rep.CCBound)

	// 2. The greedy walk (always step to the smallest-id unvisited
	// out-neighbor) does NOT decide Hamiltonicity: CertifyDigraph counts
	// the pairs where it misdecides — one-sided "no"s on yes-instances.
	greedy, err := reduction.CertifyDigraph(fam, reduction.GreedyHamPath(fam), reduction.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy-path heuristic: flagged on %d/%d pairs\n",
		greedy.Mismatches, len(greedy.Pairs))

	// 3. Extract the two-party transcript of one intersecting pair and
	// verify the simulation invariant: replaying Bob's recorded messages
	// against Alice's side alone reproduces her run exactly.
	x, _ := comm.BitsFromUint64(fam.K(), 0b0110)
	y, _ := comm.BitsFromUint64(fam.K(), 0b0011)
	d, err := fam.Build(x, y)
	if err != nil {
		log.Fatal(err)
	}
	factory, _, err := algorithms.DiCollectFactory(d, 0, algorithms.DiCollectSpec{
		Eval: func(component *graph.Digraph) (int64, error) { return int64(component.M()), nil },
	})
	if err != nil {
		log.Fatal(err)
	}
	transcript, res, err := reduction.VerifyDigraphSimulation(d, fam.AliceSide(), factory, dicongest.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transcript of (x=%s, y=%s): %d crossing messages, %d bits A->B, %d bits B->A over %d rounds\n",
		x, y, len(transcript.Entries), transcript.BitsAB, transcript.BitsBA, res.Rounds)
	fmt.Println("simulation invariant verified: Alice's view is her side plus the transcript")
}
