// Command certify walks the reduction engine end to end on the Theorem
// 2.1 MDS family: it certifies the exact collect-and-solve upper bound
// over every input pair, shows the greedy baseline being flagged as not
// deciding the predicate, and extracts one run's two-party transcript —
// the Alice-Bob simulation of Theorem 1.1 made concrete.
package main

import (
	"fmt"
	"log"
	"time"

	"congesthard/internal/algorithms"
	"congesthard/internal/comm"
	"congesthard/internal/congest"
	"congesthard/internal/constructions/mdslb"
	"congesthard/internal/graph"
	"congesthard/internal/reduction"
)

func main() {
	fam, err := mdslb.New(2)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Certify the exact algorithm over all 2^(2K) = 256 pairs: every
	// run is a real CONGEST simulation with the Alice-Bob cut metered.
	// The sweep shards across GOMAXPROCS cores yet reports exactly what a
	// serial walk would.
	started := time.Now()
	rep, err := reduction.Certify(fam, reduction.CollectMDS(fam), reduction.Config{Seed: 1, TranscriptChecks: 1})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(started)
	fmt.Printf("collect-and-solve on the MDS family: %d/%d pairs correct\n",
		len(rep.Pairs)-rep.Mismatches, len(rep.Pairs))
	fmt.Printf("  worst run: %d rounds, Theorem 1.1 budget 2*T*B*|E_cut| = %d bits >= CC(DISJ at K=%d) = %.0f\n",
		rep.MaxRounds, rep.SimBits, rep.Stats.K, rep.CCBound)
	fmt.Printf("  swept %d pairs in %s (%.0f pairs/s)\n",
		rep.Completed, elapsed.Round(time.Millisecond), float64(rep.Completed)/elapsed.Seconds())

	// 2. The greedy O(log n)-approximation does NOT decide the predicate:
	// Certify counts the pairs where it misdecides.
	greedy, err := reduction.Certify(fam, reduction.GreedyMDS(fam), reduction.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy baseline: flagged on %d/%d pairs (one-sided: overshoots on yes-instances)\n",
		greedy.Mismatches, len(greedy.Pairs))

	// 3. Extract the two-party transcript of one intersecting pair and
	// verify the simulation invariant: replaying Bob's recorded messages
	// against Alice's side alone reproduces her run exactly.
	x, _ := comm.BitsFromUint64(fam.K(), 0b0110)
	y, _ := comm.BitsFromUint64(fam.K(), 0b0011)
	g, err := fam.Build(x, y)
	if err != nil {
		log.Fatal(err)
	}
	factory, _, err := algorithms.CollectFactory(g, 0, algorithms.CollectSpec{
		Eval: func(component *graph.Graph) (int64, error) { return int64(component.M()), nil },
	})
	if err != nil {
		log.Fatal(err)
	}
	transcript, res, err := reduction.VerifySimulation(g, fam.AliceSide(), factory, congest.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transcript of (x=%s, y=%s): %d crossing messages, %d bits A->B, %d bits B->A over %d rounds\n",
		x, y, len(transcript.Entries), transcript.BitsAB, transcript.BitsBA, res.Rounds)
	fmt.Println("simulation invariant verified: Alice's view is her side plus the transcript")
}
