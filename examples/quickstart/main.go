// Command quickstart demonstrates the library's core loop on the paper's
// flagship construction (Theorem 2.1): build the MDS lower-bound family,
// machine-verify Definition 1.1 exhaustively at k=2, and print the
// Theorem 1.1 round lower bound implied at growing k.
package main

import (
	"fmt"
	"log"

	"congesthard/internal/comm"
	"congesthard/internal/constructions/mdslb"
	"congesthard/internal/lbfamily"
	"congesthard/internal/solver"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== Hardness of Distributed Optimization: quickstart ==")
	fmt.Println()
	fmt.Println("Theorem 2.1: deciding whether a graph has a dominating set of")
	fmt.Println("size 4*log(k)+2 requires Omega(n^2/log^2 n) CONGEST rounds.")
	fmt.Println()

	// 1. Exhaustive machine verification of the family at k=2: for all
	// 2^4 x 2^4 input pairs, P(G_{x,y}) <=> not DISJ(x,y), with the
	// Definition 1.1 structural conditions.
	fam, err := mdslb.New(2)
	if err != nil {
		return err
	}
	fmt.Print("verifying Definition 1.1 exhaustively at k=2 (256 input pairs)... ")
	if err := lbfamily.Verify(fam); err != nil {
		return fmt.Errorf("family verification failed: %w", err)
	}
	fmt.Println("OK")

	// 2. One concrete instance: intersecting inputs admit the witness
	// dominating set of size exactly 4*log(k)+2.
	x := comm.NewBits(fam.K())
	y := comm.NewBits(fam.K())
	x.Set(comm.PairIndex(1, 0, 2), true)
	y.Set(comm.PairIndex(1, 0, 2), true)
	g, err := fam.Build(x, y)
	if err != nil {
		return err
	}
	witness, err := fam.WitnessDominatingSet(x, y)
	if err != nil {
		return err
	}
	fmt.Printf("intersecting instance: witness dominating set %v (size %d) valid: %v\n",
		witness, len(witness), solver.IsDominatingSet(g, witness))

	// 3. The scaling table: Theorem 1.1's implied bound K/(|cut|*log n).
	fmt.Println()
	fmt.Println("k      n    |E_cut|   K       implied rounds LB")
	for _, k := range []int{2, 4, 8, 16, 32, 64} {
		f, err := mdslb.New(k)
		if err != nil {
			return err
		}
		stats, err := lbfamily.MeasureStats(f)
		if err != nil {
			return err
		}
		bound, err := lbfamily.ImpliedLowerBound(stats, f.Func())
		if err != nil {
			return err
		}
		fmt.Printf("%-5d %-5d %-8d %-7d %10.1f\n", k, stats.N, stats.CutSize, stats.K, bound)
	}
	fmt.Println()
	fmt.Println("The bound grows ~n^2/log^2 n while the trivial algorithm uses")
	fmt.Println("O(m) = O(n^2) rounds: exact MDS is near-quadratically hard.")
	return nil
}
