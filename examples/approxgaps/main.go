// Command approxgaps walks through the Section 4 hardness-of-approximation
// machinery: the Reed-Solomon code gadget behind the (7/8+ε) MaxIS gap
// (Theorem 4.3) and the r-covering collections behind the 2-MDS
// logarithmic gap (Theorem 4.4), printing the measured YES/NO optima.
package main

import (
	"fmt"
	"log"

	"congesthard/internal/comm"
	"congesthard/internal/constructions/apxmaxislb"
	"congesthard/internal/constructions/kmdslb"
	"congesthard/internal/cover"
	"congesthard/internal/solver"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== Theorem 4.3: the code-gadget MaxIS gap ==")
	fam, err := apxmaxislb.New(apxmaxislb.Params{K: 2, L: 2, T: 1})
	if err != nil {
		return err
	}
	p := fam.Params()
	fmt.Printf("parameters: k=%d, l=%d, t=%d, q=%d; n=%d\n", p.K, p.L, p.T, fam.Q(), fam.N())
	cw0, err := fam.Codeword(0)
	if err != nil {
		return err
	}
	cw1, err := fam.Codeword(1)
	if err != nil {
		return err
	}
	fmt.Printf("row codewords: g(0)=%v g(1)=%v (Hamming distance >= l+1 = %d)\n", cw0, cw1, p.L+1)

	x := comm.NewBits(fam.K())
	x.Set(0, true)
	gYes, err := fam.Build(x, x)
	if err != nil {
		return err
	}
	yes, _, err := solver.MaxWeightIndependentSet(gYes)
	if err != nil {
		return err
	}
	zero := comm.NewBits(fam.K())
	gNo, err := fam.Build(zero, zero)
	if err != nil {
		return err
	}
	no, _, err := solver.MaxWeightIndependentSet(gNo)
	if err != nil {
		return err
	}
	fmt.Printf("YES optimum = %d (= 8l+4t = %d); NO optimum = %d (<= 7l+4t = %d)\n",
		yes, fam.YesWeight(), no, fam.NoWeight())
	fmt.Printf("distinguishing better than ratio %.4f decides DISJ => Omega~(n^2) rounds\n",
		float64(fam.NoWeight())/float64(fam.YesWeight()))

	fmt.Println()
	fmt.Println("== Theorem 4.4: the 2-MDS covering-design gap ==")
	c, err := cover.Find(4, 12, 2, 7, 500)
	if err != nil {
		return err
	}
	fmt.Printf("verified 2-covering collection: T=%d sets over universe of %d\n", c.T(), c.L)
	params := kmdslb.Params{Collection: c, R: 2}
	two, err := kmdslb.NewTwoMDS(params)
	if err != nil {
		return err
	}
	xs := comm.NewBits(two.K())
	xs.Set(1, true)
	gY, err := two.Build(xs, xs)
	if err != nil {
		return err
	}
	wYes, err := two.GapWeights(gY)
	if err != nil {
		return err
	}
	zeroT := comm.NewBits(two.K())
	gN, err := two.Build(zeroT, zeroT)
	if err != nil {
		return err
	}
	wNo, err := two.GapWeights(gN)
	if err != nil {
		return err
	}
	fmt.Printf("weighted 2-MDS: YES optimum = %d, NO optimum = %d (> r = %d)\n", wYes, wNo, params.R)
	fmt.Println("any approximation below the gap factor decides DISJ => near-linear hardness")
	fmt.Println("for O(log n)-approximate 2-MDS (and k-MDS, and Steiner tree variants).")
	return nil
}
