// Command maxcutapprox reproduces the paper's Section 2.4 contrast on a
// live simulation: exact weighted max-cut needs Ω̃(n²) rounds (Theorem
// 2.8), yet the unweighted (1-ε)-approximation of Theorem 2.9 runs in
// Õ(n) rounds. The program runs both the collect-everything exact
// algorithm and the sampling algorithm on random graphs of growing size
// and prints rounds and achieved ratio side by side.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"congesthard/internal/algorithms"
	"congesthard/internal/graph"
	"congesthard/internal/solver"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(42))
	fmt.Println("== Theorem 2.9: (1-eps)-approx max-cut vs exact, simulated ==")
	fmt.Println()
	fmt.Println("n     m     p      exactRounds  approxRounds  ratio")
	for _, n := range []int{12, 16, 20, 24} {
		g := graph.Gnp(n, 0.5, rng)
		for !g.IsConnected() {
			g = graph.Gnp(n, 0.5, rng)
		}
		opt, _, err := solver.MaxCut(g)
		if err != nil {
			return err
		}
		exact, err := algorithms.CollectAndSolve(g, func(gg *graph.Graph) (interface{}, error) {
			w, _, err := solver.MaxCut(gg)
			return w, err
		})
		if err != nil {
			return err
		}
		// Sample with p ~ n*log(n)/m as in the theorem.
		p := float64(n) * 2 / float64(g.M())
		if p > 1 {
			p = 1
		}
		approx, err := algorithms.MaxCutApprox(g, p, rng)
		if err != nil {
			return err
		}
		ratio := float64(approx.AchievedValue) / float64(opt)
		fmt.Printf("%-5d %-5d %-6.2f %-12d %-13d %.3f\n",
			n, g.M(), p, exact.Rounds, approx.Rounds, ratio)
	}
	fmt.Println()
	fmt.Println("Approx rounds track O(mp + D + n) = O~(n); exact rounds track O(m + D).")

	// The weighted lower-bound side: the random ½-approximation for scale.
	fmt.Println()
	g := graph.GnpWeighted(20, 0.5, 50, rng)
	opt, _, err := solver.MaxCut(g)
	if err != nil {
		return err
	}
	_, w := algorithms.RandomCut(g, rng)
	fmt.Printf("weighted instance: random cut %d vs optimum %d (%.2f)\n", w, opt, float64(w)/float64(opt))
	return nil
}
