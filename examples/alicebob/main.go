// Command alicebob makes Theorem 1.1 concrete: it runs a CONGEST
// algorithm (min-id flooding) on a lower-bound graph G_{x,y} with Alice
// simulating V_A and Bob V_B, meters the bits that cross the fixed cut,
// and compares them with the Theorem 1.1 budget 2*T*|E_cut|*B — the
// inequality that converts round lower bounds into communication lower
// bounds. It then shows the Section 5 counterpoint: the 2-approximation
// protocol for MDS solves the approximate problem with only
// O(|E_cut|*log n) bits, which is why Theorem 1.1 cannot rule out fast
// 2-approximations (Claim 5.8).
package main

import (
	"fmt"
	"log"

	"congesthard/internal/comm"
	"congesthard/internal/congest"
	"congesthard/internal/constructions/mdslb"
	"congesthard/internal/lbfamily"
	"congesthard/internal/limits"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fam, err := mdslb.New(4)
	if err != nil {
		return err
	}
	x := comm.NewBits(fam.K())
	y := comm.NewBits(fam.K())
	x.Set(5, true)
	y.Set(5, true)

	// A T-round algorithm: flood the minimum id for T rounds.
	const rounds = 12
	factory := func(local congest.Local) congest.Node {
		best := int64(local.ID)
		return &congest.FuncNode{
			RoundFunc: func(round int, inbox []congest.Incoming) ([]congest.Message, bool) {
				for _, m := range inbox {
					if m.Payload < best {
						best = m.Payload
					}
				}
				if round >= rounds {
					return nil, true
				}
				var out []congest.Message
				for _, nbr := range local.Neighbors {
					out = append(out, congest.Message{To: nbr, Payload: best})
				}
				return out, false
			},
			OutputFunc: func() interface{} { return best },
		}
	}

	res, err := lbfamily.SimulateTwoParty(fam, x, y, factory)
	if err != nil {
		return err
	}
	stats, err := lbfamily.MeasureStats(fam)
	if err != nil {
		return err
	}
	budget := int64(2*res.Rounds*stats.CutSize) * int64(res.BandwidthBits)
	fmt.Println("== Theorem 1.1 simulation on the MDS family (k=4) ==")
	fmt.Printf("n = %d, |E_cut| = %d, bandwidth B = %d bits\n", stats.N, stats.CutSize, res.BandwidthBits)
	fmt.Printf("algorithm ran %d rounds; bits across the cut: %d\n", res.Rounds, res.CutBits)
	fmt.Printf("Theorem 1.1 budget 2*T*|E_cut|*B = %d  (measured <= budget: %v)\n",
		budget, res.CutBits <= budget)
	fmt.Println()
	fmt.Println("So a T-round CONGEST algorithm yields a protocol with")
	fmt.Println("O(T*|E_cut|*log n) bits; CC(DISJ) = Omega(k^2) then forces")
	fmt.Println("T = Omega(k^2 / (|E_cut| log n)) rounds.")

	// The Section 5 counterpoint.
	g, err := fam.Build(x, y)
	if err != nil {
		return err
	}
	protoRes, err := limits.TwoApproxMDS(g, fam.AliceSide())
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("== Claim 5.8 counterpoint: 2-approximate MDS is cheap ==")
	fmt.Printf("protocol value %d vs optimum %d (ratio %.2f) using only %d bits\n",
		protoRes.Value, protoRes.Optimal, protoRes.Ratio, protoRes.Bits)
	fmt.Println("=> the Alice-Bob framework cannot prove hardness beyond factor 2 for MDS.")
	return nil
}
