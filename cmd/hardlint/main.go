// Command hardlint runs the repo's invariant analyzers (internal/lint)
// over the given packages — a multichecker in the go/analysis sense,
// built on the standard library. It is gated in CI; run it locally with
//
//	go run ./cmd/hardlint ./...
//
// Exit codes: 0 clean, 1 findings, 2 load/typecheck failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"congesthard/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and the invariants they encode, then exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hardlint [-list] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the hardness invariant analyzers over the given package patterns\n")
		fmt.Fprintf(os.Stderr, "(default ./...). See README.md#static-analysis for the invariant each\n")
		fmt.Fprintf(os.Stderr, "analyzer encodes and the //hardness: and //nolint:hardlint directives.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n           invariant: %s\n           docs: %s\n", a.Name, a.Doc, a.Invariant, a.URL)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hardlint: %v\n", err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		for _, d := range lint.Check(pkg) {
			findings++
			inv, url := "hardlint directive", "README.md#static-analysis"
			if a := lint.AnalyzerByName(d.Analyzer); a != nil {
				inv, url = a.Invariant, a.URL
			}
			fmt.Printf("%s\n    invariant: %s — see %s\n", d, inv, url)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "hardlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
