// Command benchjson converts `go test -bench` output into a
// machine-readable JSON array, so CI can archive the performance
// trajectory of the tracked benchmarks as BENCH_<sha>.json artifacts, and
// diffs two such artifacts so CI can fail on ns/op regressions between
// consecutive commits.
//
// Usage:
//
//	go test -bench . -benchmem | benchjson -out BENCH_abc1234.json
//	benchjson -in bench.out -out BENCH_abc1234.json
//	benchjson -diff [-max-regress 25] BENCH_old.json BENCH_new.json
//
// In convert mode, lines that are not benchmark results (headers, PASS,
// ok) are ignored. In diff mode, per-benchmark ns/op and allocs/op deltas
// are printed for every name present in both files (added and removed
// benchmarks are noted but never fail the diff), and the exit status is
// non-zero when any shared benchmark's ns/op regressed by more than
// -max-regress percent, or — with -max-allocs-regress >= 0 — when its
// allocs/op regressed past that gate (a formerly zero-alloc benchmark
// that starts allocating always trips the allocs gate).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	in := flag.String("in", "", "input file (default stdin)")
	out := flag.String("out", "", "output file (default stdout)")
	diff := flag.Bool("diff", false, "diff two BENCH_*.json files: benchjson -diff old.json new.json")
	maxRegress := flag.Float64("max-regress", 25, "with -diff: fail when any shared benchmark's ns/op grew by more than this percentage")
	maxAllocsRegress := flag.Float64("max-allocs-regress", -1, "with -diff: fail when any shared benchmark's allocs/op grew by more than this percentage (negative disables the allocs gate; 0 also fails formerly zero-alloc benchmarks that now allocate)")
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -diff [-max-regress pct] old.json new.json")
			os.Exit(2)
		}
		old, err := readEntries(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cur, err := readEntries(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rows := Diff(old, cur)
		regressed := PrintDiff(os.Stdout, rows, *maxRegress, *maxAllocsRegress)
		if regressed > 0 {
			fmt.Fprintf(os.Stderr, "%d benchmark metric(s) regressed past the gates (ns/op > %.0f%%, allocs gate %.0f%%)\n", regressed, *maxRegress, *maxAllocsRegress)
			os.Exit(1)
		}
		return
	}
	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	entries, err := Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "no benchmark lines found in input")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// readEntries loads one BENCH_*.json artifact.
func readEntries(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return entries, nil
}

// DiffRow is one benchmark's trajectory step. Added/Removed rows carry only
// the side that exists; shared rows carry the ns/op and allocs/op deltas
// in percent (positive = slower / more allocations).
type DiffRow struct {
	Name           string
	OldNs          float64
	NewNs          float64
	DeltaPct       float64
	OldAllocs      int64
	NewAllocs      int64
	AllocsDeltaPct float64
	Added          bool
	Removed        bool
}

// Diff matches two artifact entry lists by benchmark name (first
// occurrence wins on duplicates) and returns one row per name, sorted.
func Diff(old, cur []Entry) []DiffRow {
	oldByName := map[string]Entry{}
	for _, e := range old {
		if _, ok := oldByName[e.Name]; !ok {
			oldByName[e.Name] = e
		}
	}
	var rows []DiffRow
	seen := map[string]bool{}
	for _, e := range cur {
		if seen[e.Name] {
			continue
		}
		seen[e.Name] = true
		o, ok := oldByName[e.Name]
		if !ok {
			rows = append(rows, DiffRow{Name: e.Name, NewNs: e.NsPerOp, NewAllocs: e.AllocsPerOp, Added: true})
			continue
		}
		row := DiffRow{
			Name:  e.Name,
			OldNs: o.NsPerOp, NewNs: e.NsPerOp,
			OldAllocs: o.AllocsPerOp, NewAllocs: e.AllocsPerOp,
		}
		if o.NsPerOp > 0 {
			row.DeltaPct = (e.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		if o.AllocsPerOp > 0 {
			row.AllocsDeltaPct = float64(e.AllocsPerOp-o.AllocsPerOp) / float64(o.AllocsPerOp) * 100
		}
		rows = append(rows, row)
	}
	for _, e := range old {
		if !seen[e.Name] {
			seen[e.Name] = true
			rows = append(rows, DiffRow{Name: e.Name, OldNs: e.NsPerOp, OldAllocs: e.AllocsPerOp, Removed: true})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// PrintDiff renders the rows — ns/op and allocs/op deltas side by side —
// and returns how many shared benchmarks regressed: past maxRegress
// percent ns/op, or (when maxAllocsRegress >= 0) past maxAllocsRegress
// percent allocs/op. A zero-alloc benchmark that starts allocating is
// always an allocs regression when the allocs gate is on.
func PrintDiff(w io.Writer, rows []DiffRow, maxRegress, maxAllocsRegress float64) int {
	regressed := 0
	for _, r := range rows {
		switch {
		case r.Added:
			fmt.Fprintf(w, "%-60s %14s -> %12.1f ns/op  %10s -> %8d allocs/op  (new)\n",
				r.Name, "-", r.NewNs, "-", r.NewAllocs)
		case r.Removed:
			fmt.Fprintf(w, "%-60s %14.1f -> %12s ns/op  %10d -> %8s allocs/op  (removed)\n",
				r.Name, r.OldNs, "-", r.OldAllocs, "-")
		default:
			marker := ""
			if r.DeltaPct > maxRegress {
				marker = "  REGRESSION(ns/op)"
				regressed++
			}
			allocsUp := r.AllocsDeltaPct > maxAllocsRegress ||
				(r.OldAllocs == 0 && r.NewAllocs > 0)
			if maxAllocsRegress >= 0 && allocsUp {
				marker += "  REGRESSION(allocs/op)"
				regressed++
			}
			fmt.Fprintf(w, "%-60s %14.1f -> %12.1f ns/op  %+7.1f%%  %10d -> %8d allocs/op  %+7.1f%%%s\n",
				r.Name, r.OldNs, r.NewNs, r.DeltaPct, r.OldAllocs, r.NewAllocs, r.AllocsDeltaPct, marker)
		}
	}
	return regressed
}

// Parse extracts benchmark entries from `go test -bench` output: lines of
// the form
//
//	BenchmarkName-8   5   123456 ns/op   789 B/op   12 allocs/op
//
// The GOMAXPROCS suffix stays part of the name (it affects the parallel
// verification benchmarks' meaning).
func Parse(r io.Reader) ([]Entry, error) {
	var entries []Entry
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{Name: fields[0], Iterations: iters}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				if e.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
					return nil, fmt.Errorf("parsing %q: %w", line, err)
				}
				seen = true
			case "B/op":
				if e.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
					return nil, fmt.Errorf("parsing %q: %w", line, err)
				}
			case "allocs/op":
				if e.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
					return nil, fmt.Errorf("parsing %q: %w", line, err)
				}
			}
		}
		if seen {
			entries = append(entries, e)
		}
	}
	return entries, scanner.Err()
}
