// Command benchjson converts `go test -bench` output into a
// machine-readable JSON array, so CI can archive the performance
// trajectory of the tracked benchmarks as BENCH_<sha>.json artifacts.
//
// Usage:
//
//	go test -bench . -benchmem | benchjson -out BENCH_abc1234.json
//	benchjson -in bench.out -out BENCH_abc1234.json
//
// Lines that are not benchmark results (headers, PASS, ok) are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	in := flag.String("in", "", "input file (default stdin)")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()
	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	entries, err := Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "no benchmark lines found in input")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// Parse extracts benchmark entries from `go test -bench` output: lines of
// the form
//
//	BenchmarkName-8   5   123456 ns/op   789 B/op   12 allocs/op
//
// The GOMAXPROCS suffix stays part of the name (it affects the parallel
// verification benchmarks' meaning).
func Parse(r io.Reader) ([]Entry, error) {
	var entries []Entry
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{Name: fields[0], Iterations: iters}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				if e.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
					return nil, fmt.Errorf("parsing %q: %w", line, err)
				}
				seen = true
			case "B/op":
				if e.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
					return nil, fmt.Errorf("parsing %q: %w", line, err)
				}
			case "allocs/op":
				if e.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
					return nil, fmt.Errorf("parsing %q: %w", line, err)
				}
			}
		}
		if seen {
			entries = append(entries, e)
		}
	}
	return entries, scanner.Err()
}
