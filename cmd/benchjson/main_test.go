package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: congesthard
cpu: some cpu
BenchmarkCongestRunCore/64v-rounds=64-8         	       5	    291234 ns/op	     269 B/op	       9 allocs/op
BenchmarkVerifyExhaustive/mdslb-k2-8            	       5	    755000 ns/op	   24680 B/op	     246 allocs/op
BenchmarkNoMem-8 	      10	     123.5 ns/op
PASS
ok  	congesthard	12.3s
`
	entries, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("parsed %d entries, want 3", len(entries))
	}
	first := entries[0]
	if first.Name != "BenchmarkCongestRunCore/64v-rounds=64-8" {
		t.Errorf("name %q", first.Name)
	}
	if first.Iterations != 5 || first.NsPerOp != 291234 || first.BytesPerOp != 269 || first.AllocsPerOp != 9 {
		t.Errorf("entry %+v", first)
	}
	if entries[1].AllocsPerOp != 246 {
		t.Errorf("allocs %d, want 246", entries[1].AllocsPerOp)
	}
	noMem := entries[2]
	if noMem.NsPerOp != 123.5 || noMem.AllocsPerOp != 0 {
		t.Errorf("memless entry %+v", noMem)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	entries, err := Parse(strings.NewReader("Benchmark\nBenchmarkX notanumber ns/op\nhello\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("parsed %d entries from garbage", len(entries))
	}
}
