package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: congesthard
cpu: some cpu
BenchmarkCongestRunCore/64v-rounds=64-8         	       5	    291234 ns/op	     269 B/op	       9 allocs/op
BenchmarkVerifyExhaustive/mdslb-k2-8            	       5	    755000 ns/op	   24680 B/op	     246 allocs/op
BenchmarkNoMem-8 	      10	     123.5 ns/op
PASS
ok  	congesthard	12.3s
`
	entries, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("parsed %d entries, want 3", len(entries))
	}
	first := entries[0]
	if first.Name != "BenchmarkCongestRunCore/64v-rounds=64-8" {
		t.Errorf("name %q", first.Name)
	}
	if first.Iterations != 5 || first.NsPerOp != 291234 || first.BytesPerOp != 269 || first.AllocsPerOp != 9 {
		t.Errorf("entry %+v", first)
	}
	if entries[1].AllocsPerOp != 246 {
		t.Errorf("allocs %d, want 246", entries[1].AllocsPerOp)
	}
	noMem := entries[2]
	if noMem.NsPerOp != 123.5 || noMem.AllocsPerOp != 0 {
		t.Errorf("memless entry %+v", noMem)
	}
}

func TestDiffMatchesByNameAndFlagsRegressions(t *testing.T) {
	old := []Entry{
		{Name: "BenchmarkA-8", NsPerOp: 1000},
		{Name: "BenchmarkB-8", NsPerOp: 2000},
		{Name: "BenchmarkGone-8", NsPerOp: 5},
	}
	cur := []Entry{
		{Name: "BenchmarkB-8", NsPerOp: 2600}, // +30%: regression at 25%
		{Name: "BenchmarkA-8", NsPerOp: 900},  // -10%: fine
		{Name: "BenchmarkNew-8", NsPerOp: 7},
	}
	rows := Diff(old, cur)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	byName := map[string]DiffRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if r := byName["BenchmarkA-8"]; r.DeltaPct > -9.9 || r.DeltaPct < -10.1 || r.Added || r.Removed {
		t.Errorf("A row %+v", r)
	}
	if r := byName["BenchmarkB-8"]; r.DeltaPct < 29.9 || r.DeltaPct > 30.1 {
		t.Errorf("B row %+v", r)
	}
	if r := byName["BenchmarkNew-8"]; !r.Added {
		t.Errorf("new row not marked added: %+v", r)
	}
	if r := byName["BenchmarkGone-8"]; !r.Removed {
		t.Errorf("gone row not marked removed: %+v", r)
	}
	var out strings.Builder
	if got := PrintDiff(&out, rows, 25, -1); got != 1 {
		t.Errorf("regressed = %d, want 1 (only B; added/removed rows never fail)", got)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("report missing REGRESSION marker:\n%s", out.String())
	}
	if got := PrintDiff(&out, rows, 35, -1); got != 0 {
		t.Errorf("regressed = %d at 35%% threshold, want 0", got)
	}
}

func TestDiffTracksAllocs(t *testing.T) {
	old := []Entry{
		{Name: "BenchmarkHot-8", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "BenchmarkCold-8", NsPerOp: 100, AllocsPerOp: 100},
	}
	cur := []Entry{
		{Name: "BenchmarkHot-8", NsPerOp: 100, AllocsPerOp: 3},    // 0 -> 3: zero-alloc path broken
		{Name: "BenchmarkCold-8", NsPerOp: 100, AllocsPerOp: 120}, // +20%
	}
	rows := Diff(old, cur)
	byName := map[string]DiffRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if r := byName["BenchmarkCold-8"]; r.OldAllocs != 100 || r.NewAllocs != 120 || r.AllocsDeltaPct < 19.9 || r.AllocsDeltaPct > 20.1 {
		t.Errorf("cold row %+v", r)
	}
	if r := byName["BenchmarkHot-8"]; r.OldAllocs != 0 || r.NewAllocs != 3 || r.AllocsDeltaPct != 0 {
		t.Errorf("hot row %+v (zero baseline must not divide)", r)
	}

	// Gate off: allocs growth alone never fails.
	var out strings.Builder
	if got := PrintDiff(&out, rows, 25, -1); got != 0 {
		t.Errorf("allocs gate disabled but regressed = %d", got)
	}
	if !strings.Contains(out.String(), "allocs/op") {
		t.Errorf("report missing allocs column:\n%s", out.String())
	}
	// Gate at 25%: the 0 -> 3 break trips it, the +20% does not.
	out.Reset()
	if got := PrintDiff(&out, rows, 25, 25); got != 1 {
		t.Errorf("regressed = %d at allocs gate 25%%, want 1 (the 0->3 break)", got)
	}
	if !strings.Contains(out.String(), "REGRESSION(allocs/op)") {
		t.Errorf("report missing allocs regression marker:\n%s", out.String())
	}
	// Gate at 0%: both trip.
	if got := PrintDiff(&out, rows, 25, 0); got != 2 {
		t.Errorf("regressed = %d at allocs gate 0%%, want 2", got)
	}
}

func TestDiffZeroBaselineDoesNotDivide(t *testing.T) {
	rows := Diff([]Entry{{Name: "BenchmarkZ-8", NsPerOp: 0}}, []Entry{{Name: "BenchmarkZ-8", NsPerOp: 10}})
	if len(rows) != 1 || rows[0].DeltaPct != 0 {
		t.Errorf("zero baseline rows %+v", rows)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	entries, err := Parse(strings.NewReader("Benchmark\nBenchmarkX notanumber ns/op\nhello\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("parsed %d entries from garbage", len(entries))
	}
}
