// Command hardload is a load generator for the hardness job server: it
// fires n certification jobs at concurrency c, waits for each to finish,
// and prints a greppable summary (outcome counters, shed count, p50/p99
// job latency and end-to-end request rate). With -no-retry it submits
// each job exactly once, so shed submissions surface as shed429 instead
// of being retried — the mode CI uses to assert that an oversized burst
// actually draws 429s.
//
//	hardload -addr http://localhost:8080 -n 64 -c 8 -family mds -alg greedy -pairs 16
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"congesthard/internal/obs"
	"congesthard/internal/serve"
	"congesthard/internal/serve/client"
)

func main() {
	var (
		addr       = flag.String("addr", "http://localhost:8080", "server base URL")
		n          = flag.Int("n", 32, "total jobs to submit")
		c          = flag.Int("c", 4, "submission concurrency")
		family     = flag.String("family", "mds", "family to certify")
		alg        = flag.String("alg", "greedy", "algorithm to pair with")
		pairs      = flag.Int("pairs", 16, "sampled pairs per job (0 = exhaustive)")
		seed       = flag.Int64("seed", 1, "base seed; job i uses seed+i")
		faultSpec  = flag.String("faults", "", "fault plan for every job, e.g. drop=0.01,seed=7")
		jobTimeout = flag.Duration("job-timeout", 0, "per-job deadline sent to the server (0 = server default)")
		noRetry    = flag.Bool("no-retry", false, "submit once, count 429/503 as shed instead of retrying")
		timeout    = flag.Duration("timeout", 2*time.Minute, "overall load-run deadline")
	)
	flag.Parse()

	cl := client.New(*addr)
	cl.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	if *noRetry {
		cl.MaxRetries = -1
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// Latencies go into the same fixed-bucket histogram type the server
	// exports through /v1/metrics, so hardload's p50/p99 and the server's
	// dashboards quantize identically. 1ms..~9h in x2 steps; Observe is
	// lock-free, so workers record without a shared mutex.
	latencies := obs.MustHistogram(obs.ExpBuckets(0.001, 2, 25))
	var (
		done      atomic.Int64
		failed    atomic.Int64
		cancelled atomic.Int64
		shed      atomic.Int64
		errs      atomic.Int64
	)
	jobCh := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(worker)))
			wcl := *cl
			wcl.Rand = rng
			for i := range jobCh {
				req := serve.JobRequest{
					Family: *family, Alg: *alg,
					Pairs: *pairs, Seed: *seed + int64(i),
					Faults:    *faultSpec,
					TimeoutMS: jobTimeout.Milliseconds(),
				}
				jobStart := time.Now()
				st, err := wcl.Submit(ctx, req)
				if err != nil {
					if se, ok := err.(*client.StatusError); ok && se.Temporary() {
						shed.Add(1)
					} else {
						errs.Add(1)
						fmt.Fprintf(os.Stderr, "submit job %d: %v\n", i, err)
					}
					continue
				}
				st, err = wcl.Wait(ctx, st.ID)
				if err != nil {
					errs.Add(1)
					fmt.Fprintf(os.Stderr, "wait job %s: %v\n", st.ID, err)
					continue
				}
				latencies.Observe(time.Since(jobStart).Seconds())
				switch st.State {
				case serve.StateDone:
					done.Add(1)
				case serve.StateCancelled:
					cancelled.Add(1)
				default:
					failed.Add(1)
				}
			}
		}(w)
	}
	for i := 0; i < *n; i++ {
		jobCh <- i
	}
	close(jobCh)
	wg.Wait()
	elapsed := time.Since(start)

	completed := done.Load() + failed.Load() + cancelled.Load()
	rps := float64(completed) / elapsed.Seconds()
	fmt.Printf("jobs=%d done=%d failed=%d cancelled=%d shed429=%d errors=%d\n",
		*n, done.Load(), failed.Load(), cancelled.Load(), shed.Load(), errs.Load())
	fmt.Printf("p50=%.1fms p99=%.1fms rps=%.1f elapsed=%.2fs\n",
		latencies.Quantile(0.50)*1000,
		latencies.Quantile(0.99)*1000,
		rps, elapsed.Seconds())
	if errs.Load() > 0 {
		os.Exit(1)
	}
}
