package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"congesthard/internal/serve"
)

// TestRunCertifyCancelledContext: an already-cancelled context interrupts
// the sweep immediately, printing the partial report's "interrupted: N of
// M" line and returning an error (which main turns into exit 1) — the
// same contract as -timeout.
func TestRunCertifyCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := runCertify(ctx, &buf, "mds", "greedy", 8, "", 0, false, 0, false)
	if err == nil {
		t.Fatal("cancelled certify returned nil error")
	}
	out := buf.String()
	if !strings.Contains(out, "interrupted: 0 of 8 pairs certified") {
		t.Fatalf("missing interrupted line in output:\n%s", out)
	}
}

// TestRunCertifySignalInterrupt wires runCertify behind
// signal.NotifyContext exactly as main does and delivers a real SIGINT to
// the test process mid-sweep: the run must stop with a partial report
// instead of killing the process or hanging.
func TestRunCertifySignalInterrupt(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		time.Sleep(20 * time.Millisecond)
		syscall.Kill(os.Getpid(), syscall.SIGINT)
	}()
	var buf bytes.Buffer
	// Sampling is capped at the 2^(2K) = 256-pair cube, and 256
	// collect-retry pairs (each a full ARQ collect run) is well over
	// 100ms of work, so the 20ms signal always lands mid-sweep.
	start := time.Now()
	err := runCertify(ctx, &buf, "mds", "collect-retry", 4096, "", 0, false, 0, false)
	if err == nil {
		t.Fatalf("signal-interrupted certify returned nil after %v; output:\n%s", time.Since(start), buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "interrupted:") || !strings.Contains(out, "of 256 pairs certified") {
		t.Fatalf("missing partial-report interrupted line:\n%s", out)
	}
}

// TestRunCertifyTrace: -trace emits one greppable line per simulated
// round, pairs appear in canonical serial order, and the summed rounds
// match the report the same run prints.
func TestRunCertifyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := runCertify(context.Background(), &buf, "mds", "collect", 4, "", 0, false, 0, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var traceLines int
	lastPair := -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "trace pair=") {
			continue
		}
		traceLines++
		for _, field := range []string{"x=", "y=", "round=", "sent=", "delivered=", "dropped=", "active="} {
			if !strings.Contains(line, " "+field) {
				t.Fatalf("trace line missing %q: %q", field, line)
			}
		}
		var pair int
		if _, err := fmt.Sscanf(line, "trace pair=%d", &pair); err != nil {
			t.Fatalf("unparseable trace line %q: %v", line, err)
		}
		if pair < lastPair {
			t.Fatalf("trace pair %d after pair %d: -trace must run serially", pair, lastPair)
		}
		lastPair = pair
	}
	if traceLines == 0 {
		t.Fatalf("no trace lines in output:\n%s", out)
	}
	if !strings.Contains(out, "certify family=mds") {
		t.Fatalf("report missing after trace lines:\n%s", out)
	}
}

// TestRunCertifyListMatchesRegistry: -certify list prints exactly the
// shared registry's pairings, keeping the CLI and the job server wired to
// the same set.
func TestRunCertifyListMatchesRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := runCertify(context.Background(), &buf, "list", "", 0, "", 0, false, 0, false); err != nil {
		t.Fatal(err)
	}
	got := strings.Fields(strings.TrimSpace(buf.String()))
	reg := serve.DefaultRegistry().List()
	if len(got) != len(reg) {
		t.Fatalf("list printed %d pairings, registry has %d:\n%s", len(got), len(reg), buf.String())
	}
	for i, p := range reg {
		if got[i] != p.Key() {
			t.Fatalf("list line %d = %q, want %q", i, got[i], p.Key())
		}
	}
}
