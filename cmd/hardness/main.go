// Command hardness is the experiment runner: it regenerates the
// quantitative content of the paper's theorems (see README.md's experiment
// index).
//
// Usage:
//
//	hardness -experiment all          # run everything
//	hardness -experiment E1           # one experiment
//	hardness -list                    # list experiment ids (authoritative)
//	hardness -seed 7 -experiment E7   # reseed the randomized experiments
//
// Certify mode runs the reduction engine: a CONGEST algorithm over the
// input pairs of a lower-bound family with the Alice-Bob cut metered
// (Theorem 1.1 made executable):
//
//	hardness -certify list                      # list family/algorithm pairings
//	hardness -certify mds -alg collect          # exhaustive (K <= 8)
//	hardness -certify mds -alg greedy -pairs 32 # sampled
//	hardness -certify maxcut -alg sampled -pairs 16 -seed 7
//	hardness -certify hamlb -alg collect        # directed (dicongest) pairing
//	hardness -certify dir-steiner -alg collect -pairs 8
//
// Sweeps are sharded across GOMAXPROCS cores by default and report the
// same pairs, seeds and first error as a serial walk (bit-identical
// output). -workers caps the shard count; -serial forces the single
// goroutine reference walk:
//
//	hardness -certify mds -alg collect -workers 2
//	hardness -certify mds -alg collect -serial
//
// Certification runs accept a deterministic fault plan (-faults, see the
// faults package for the format), a wall-clock deadline (-timeout) and
// SIGINT/SIGTERM; an interrupted sweep prints the partial report of the
// pairs certified so far. The retransmitting collect stays exact under
// bounded drop rates:
//
//	hardness -certify mds -alg collect-retry -faults drop=0.01,seed=7 -timeout 30s
//
// -trace prints one line per simulated round (pair, round, messages sent,
// delivered, dropped, live nodes); it forces the serial walk and skips
// transcript replays so every pair traces exactly once:
//
//	hardness -certify mds -alg collect -pairs 4 -trace | grep 'trace pair=0 '
//
// Serve mode runs the same pairings as a long-lived HTTP job service with
// bounded concurrency, load shedding and graceful drain (see the serve
// package):
//
//	hardness serve -addr :8080 -workers 2 -queue 16
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"congesthard/internal/aggregate"
	"congesthard/internal/algorithms"
	"congesthard/internal/comm"
	"congesthard/internal/congest"
	"congesthard/internal/constructions/apxmaxislb"
	"congesthard/internal/constructions/boundedlb"
	"congesthard/internal/constructions/hamlb"
	"congesthard/internal/constructions/kmdslb"
	"congesthard/internal/constructions/maxcutlb"
	"congesthard/internal/constructions/mdslb"
	"congesthard/internal/constructions/steinerlb"
	"congesthard/internal/cover"
	"congesthard/internal/faults"
	"congesthard/internal/graph"
	"congesthard/internal/lbfamily"
	"congesthard/internal/limits"
	"congesthard/internal/pls"
	"congesthard/internal/reduction"
	"congesthard/internal/serve"
	"congesthard/internal/solver"
)

// seed drives every randomized experiment (E4, E7, E9, E18 and the
// sampled verifications); it is printed with the output so runs are
// reproducible by default and variable on demand via -seed.
var seed int64

func main() {
	// "hardness serve" is a subcommand with its own flag set.
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	experiment := flag.String("experiment", "all", "experiment id (E1..E18, see -list) or 'all'")
	list := flag.Bool("list", false, "list experiment ids (the authoritative index)")
	certify := flag.String("certify", "", "certify a family with -alg ('mds', 'mvc', 'maxcut', 'hamlb', 'dir-steiner', or 'list')")
	alg := flag.String("alg", "", "algorithm for -certify (mds: collect|collect-retry|greedy; mvc: matching; maxcut: sampled|exact; hamlb: collect|greedy-path; dir-steiner: collect)")
	pairs := flag.Int("pairs", 0, "sampled (x,y) pairs for -certify; 0 = exhaustive over all 2^(2K) pairs (K <= 8)")
	serial := flag.Bool("serial", false, "run -certify on a single goroutine (the sharded sweep's reference order)")
	workers := flag.Int("workers", 0, "worker goroutines for the -certify sweep; 0 = GOMAXPROCS")
	faultSpec := flag.String("faults", "", "fault plan for -certify, e.g. 'drop=0.01,seed=7' or 'delay=2,crash=3@0,fail=1-2@5' (seed defaults to -seed)")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline for -certify; an interrupted sweep prints the partial report (0 = none)")
	trace := flag.Bool("trace", false, "print one line per simulated round for -certify (implies -serial; disables transcript replays so each pair is traced once)")
	flag.Int64Var(&seed, "seed", 1, "seed for the randomized experiments")
	flag.Parse()
	if *certify != "" {
		// Ctrl-C / SIGTERM cancels the sweep like -timeout does: the
		// partial report of the pairs certified so far is printed and the
		// process exits 1 (the interrupted-run exit-code contract).
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := runCertify(ctx, os.Stdout, *certify, *alg, *pairs, *faultSpec, *timeout, *serial, *workers, *trace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := run(*experiment, *list); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runCertify resolves the family/algorithm pairing in the shared serve
// registry (the CLI and the job server certify exactly the same wirings)
// and runs one sweep under ctx, printing the report — partial if the
// sweep was interrupted — to out.
func runCertify(ctx context.Context, out io.Writer, famName, algName string, pairs int, faultSpec string, timeout time.Duration, serial bool, workers int, trace bool) error {
	reg := serve.DefaultRegistry()
	if famName == "list" {
		for _, p := range reg.List() {
			fmt.Fprintln(out, p.Key())
		}
		return nil
	}
	pairing, ok := reg.Lookup(famName, algName)
	if !ok {
		return fmt.Errorf("unknown pairing %s/%s (try -certify list)", famName, algName)
	}
	run, err := pairing.Build()
	if err != nil {
		return err
	}
	cfg := reduction.Config{
		Pairs:            pairs,
		Seed:             seed,
		TranscriptChecks: 1,
		Serial:           serial,
		Workers:          workers,
	}
	if trace {
		// Round lines from sharded workers would interleave, and a
		// transcript replay simulates its pair a second time (double
		// round lines) — force the serial reference walk and skip the
		// replays so each pair traces exactly once, in canonical order.
		cfg.Serial = true
		cfg.TranscriptChecks = 0
		cfg.Trace = func(idx int, x, y comm.Bits) congest.Tracer {
			return &lineTracer{out: out, idx: idx, x: x, y: y}
		}
	}
	if faultSpec != "" {
		plan, err := faults.Parse(faultSpec)
		if err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		if plan.Seed == 0 {
			plan.Seed = seed
		}
		cfg.Faults = plan
		fmt.Fprintf(out, "faults=%s\n", plan)
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	fmt.Fprintf(out, "seed=%d\n", seed)
	started := time.Now()
	rep, err := run(ctx, cfg)
	elapsed := time.Since(started)
	if rep != nil {
		printCertifyReport(out, rep)
		if secs := elapsed.Seconds(); secs > 0 {
			fmt.Fprintf(out, "  elapsed %s (%.0f pairs/s)\n",
				elapsed.Round(time.Millisecond), float64(rep.Completed)/secs)
		}
	}
	if err != nil {
		if rep != nil {
			fmt.Fprintf(out, "  interrupted: %d of %d pairs certified (%v)\n", rep.Completed, rep.Total, err)
		}
		return err
	}
	return nil
}

// lineTracer prints one greppable line per simulated round:
//
//	trace pair=3 x=0010 y=0010 round=0 sent=24 delivered=24 dropped=0 active=12
//
// It implements congest.Tracer; runCertify wires one per pair via
// reduction.Config.Trace when -trace is set.
type lineTracer struct {
	out  io.Writer
	idx  int
	x, y comm.Bits
}

func (l *lineTracer) ObserveRound(t congest.RoundTrace) {
	fmt.Fprintf(l.out, "trace pair=%d x=%s y=%s round=%d sent=%d delivered=%d dropped=%d active=%d\n",
		l.idx, l.x, l.y, t.Round, t.Sent, t.Delivered, t.Dropped, t.Active)
}

func printCertifyReport(out io.Writer, rep *reduction.Report) {
	mode := "exhaustive"
	if !rep.Exhaustive {
		mode = "sampled"
	}
	fmt.Fprintf(out, "certify family=%s alg=%s exact=%v pairs=%d (%s)\n",
		rep.Family, rep.Algorithm, rep.Exact, len(rep.Pairs), mode)
	fmt.Fprintf(out, "  n=%d |E_cut|=%d K=%d B=%d\n",
		rep.Stats.N, rep.Stats.CutSize, rep.Stats.K, rep.Bandwidth)
	if len(rep.Pairs) <= 16 {
		for _, p := range rep.Pairs {
			fmt.Fprintf(out, "  (x=%s, y=%s) rounds=%-5d cut-bits=%-7d output=%-5v want=%-5v correct=%v\n",
				p.X, p.Y, p.Rounds, p.CutBits, p.Output, p.Want, p.Correct)
		}
	}
	fmt.Fprintf(out, "  correct %d/%d, mismatches %d", len(rep.Pairs)-rep.Mismatches, len(rep.Pairs), rep.Mismatches)
	if rep.Mismatches > 0 && !rep.Exact {
		fmt.Fprintf(out, " (approximate baseline: flagged as not deciding P)")
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "  rounds max=%d, cut-bits max=%d; Theorem 1.1 budget 2*T*B*|E_cut| = %d >= CC(f) = %.0f: %v\n",
		rep.MaxRounds, rep.MaxCutBits, rep.SimBits, rep.CCBound, float64(rep.SimBits) >= rep.CCBound)
}

type experimentFunc func() error

func experiments() map[string]experimentFunc {
	return map[string]experimentFunc{
		"E1":  e1MDS,
		"E2":  e2HamPath,
		"E3":  e3HamCycle,
		"E4":  e4TwoECSS,
		"E5":  e5Steiner,
		"E6":  e6MaxCut,
		"E7":  e7MaxCutApprox,
		"E8":  e8Bounded,
		"E9":  e9BoundedReductions,
		"E10": e10ApproxMaxIS,
		"E11": e11ApproxMaxISLinear,
		"E12": e12TwoMDS,
		"E13": e13KMDS,
		"E14": e14NodeSteiner,
		"E15": e15DirSteiner,
		"E16": e16Aggregate,
		"E17": e17Limits,
		"E18": e18PLS,
	}
}

func run(which string, list bool) error {
	exps := experiments()
	ids := make([]string, 0, len(exps))
	for id := range exps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	if list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return nil
	}
	fmt.Printf("seed=%d\n", seed)
	if which != "all" {
		fn, ok := exps[which]
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", which)
		}
		return fn()
	}
	for _, id := range ids {
		fmt.Printf("=== %s ===\n", id)
		if err := exps[id](); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println()
	}
	return nil
}

func scalingTable(name string, build func(k int) (lbfamily.Stats, comm.Function, error), ks []int) error {
	fmt.Printf("%s scaling: k, n, |E_cut|, K, implied rounds LB\n", name)
	for _, k := range ks {
		stats, f, err := build(k)
		if err != nil {
			return err
		}
		bound, err := lbfamily.ImpliedLowerBound(stats, f)
		if err != nil {
			return err
		}
		fmt.Printf("  k=%-4d n=%-5d cut=%-5d K=%-7d LB=%.1f\n", k, stats.N, stats.CutSize, stats.K, bound)
	}
	return nil
}

// kmdsState caches the verified r-covering collection the Section 4
// experiments (E12-E16) share, so '-experiment all' runs the randomized
// cover search once instead of once per experiment.
var kmdsState struct {
	once sync.Once
	p    kmdslb.Params
	err  error
}

func kmdsParams() (kmdslb.Params, error) {
	kmdsState.once.Do(func() {
		c, err := cover.Find(4, 12, 2, 7, 500)
		if err != nil {
			kmdsState.err = err
			return
		}
		kmdsState.p = kmdslb.Params{Collection: c, R: 2}
	})
	return kmdsState.p, kmdsState.err
}

func e1MDS() error {
	fam, err := mdslb.New(2)
	if err != nil {
		return err
	}
	fmt.Print("Definition 1.1 exhaustive verification (k=2)... ")
	if err := lbfamily.Verify(fam); err != nil {
		return err
	}
	fmt.Println("OK")
	return scalingTable("MDS (Thm 2.1)", func(k int) (lbfamily.Stats, comm.Function, error) {
		f, err := mdslb.New(k)
		if err != nil {
			return lbfamily.Stats{}, nil, err
		}
		stats, err := lbfamily.MeasureStats(f)
		return stats, f.Func(), err
	}, []int{2, 4, 8, 16, 32})
}

func e2HamPath() error {
	fam, err := hamlb.New(2)
	if err != nil {
		return err
	}
	fmt.Print("Definition 1.1 exhaustive verification (k=2)... ")
	if err := lbfamily.VerifyDigraph(fam); err != nil {
		return err
	}
	fmt.Println("OK")
	return scalingTable("Hamiltonian path (Thm 2.2)", func(k int) (lbfamily.Stats, comm.Function, error) {
		f, err := hamlb.New(k)
		if err != nil {
			return lbfamily.Stats{}, nil, err
		}
		stats, err := lbfamily.MeasureDigraphStats(f)
		return stats, f.Func(), err
	}, []int{2, 4, 8, 16})
}

func e3HamCycle() error {
	c, err := hamlb.NewCycle(2)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	checked := 0
	for trial := 0; trial < 30; trial++ {
		x := comm.RandomBits(4, rng)
		y := comm.RandomBits(4, rng)
		d, err := c.Build(x, y)
		if err != nil {
			return err
		}
		got, err := c.Predicate(d)
		if err != nil {
			return err
		}
		if want := x.Intersects(y); got != want {
			return fmt.Errorf("Claim 2.6 violated at (x=%s, y=%s): cycle=%v intersect=%v", x, y, got, want)
		}
		checked++
	}
	stats, err := lbfamily.MeasureDigraphStats(c)
	if err != nil {
		return err
	}
	fmt.Printf("Hamiltonian cycle family (Thm 2.3): Claim 2.6 holds on %d sampled pairs; n=%d, cut=%d\n",
		checked, stats.N, stats.CutSize)
	return nil
}

func e4TwoECSS() error {
	rng := rand.New(rand.NewSource(seed))
	g, cycle := graph.HamiltonianGnp(10, 0.2, rng)
	ok, err := solver.HasTwoECSSWithEdges(g, g.N())
	if err != nil {
		return err
	}
	fmt.Printf("2-ECSS (Thm 2.5 / Claim 2.7): planted Hamiltonian graph n=%d m=%d has an n-edge 2-ECSS: %v (planted cycle length %d)\n",
		g.N(), g.M(), ok, len(cycle))
	if !ok {
		return fmt.Errorf("claim 2.7 failed on a Hamiltonian graph")
	}
	return nil
}

func e5Steiner() error {
	fam, err := steinerlb.New(2)
	if err != nil {
		return err
	}
	x := comm.NewBits(4)
	x.Set(1, true)
	g, err := fam.Build(x, x)
	if err != nil {
		return err
	}
	tree, err := fam.WitnessSteinerTree(x, x)
	if err != nil {
		return err
	}
	_, ok := solver.IsSteinerTree(g, fam.Terminals(), tree)
	fmt.Printf("Steiner family (Thm 2.7): witness tree of %d edges (target %d), valid: %v\n",
		len(tree), fam.TargetEdges(), ok)
	set := fam.DominatingSetFromSteinerTree(tree)
	inner, err := fam.MDS.Build(x, x)
	if err != nil {
		return err
	}
	fmt.Printf("converse extraction: %d vertices dominate the MDS graph: %v\n",
		len(set), solver.IsDominatingSet(inner, set))
	return nil
}

func e6MaxCut() error {
	fam, err := maxcutlb.New(2)
	if err != nil {
		return err
	}
	x := comm.NewBits(4)
	x.Set(2, true)
	g, err := fam.Build(x, x)
	if err != nil {
		return err
	}
	best, _, err := solver.MaxCut(g)
	if err != nil {
		return err
	}
	fmt.Printf("max-cut family (Thm 2.8): intersecting optimum %d, target M = %d\n", best, fam.Target())
	zero := comm.NewBits(4)
	g0, err := fam.Build(zero, zero)
	if err != nil {
		return err
	}
	best0, _, err := solver.MaxCut(g0)
	if err != nil {
		return err
	}
	fmt.Printf("disjoint optimum %d < M: %v\n", best0, best0 < fam.Target())
	return nil
}

func e7MaxCutApprox() error {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("Thm 2.9: sampled (1-eps) max-cut vs exact collection")
	for _, n := range []int{12, 16, 20} {
		g := graph.Gnp(n, 0.5, rng)
		for !g.IsConnected() {
			g = graph.Gnp(n, 0.5, rng)
		}
		opt, _, err := solver.MaxCut(g)
		if err != nil {
			return err
		}
		res, err := algorithms.MaxCutApprox(g, 0.5, rng)
		if err != nil {
			return err
		}
		fmt.Printf("  n=%-4d opt=%-5d achieved=%-5d ratio=%.3f rounds=%d\n",
			n, opt, res.AchievedValue, float64(res.AchievedValue)/float64(opt), res.Rounds)
	}
	return nil
}

func e8Bounded() error {
	fam, err := boundedlb.NewFamily(2, 3)
	if err != nil {
		return err
	}
	fmt.Print("MVC base family exhaustive verification (k=2)... ")
	if err := lbfamily.Verify(fam); err != nil {
		return err
	}
	fmt.Println("OK")
	x := comm.NewBits(4)
	x.Set(0, true)
	inst, err := fam.BuildInstance(x, x)
	if err != nil {
		return err
	}
	g := inst.Result.Graph
	fmt.Printf("derived bounded-degree instance: n'=%d, maxDeg=%d (<=5), cut=%d, alpha-shift=%d\n",
		g.N(), g.MaxDegree(), inst.Result.CutSize, inst.Result.AlphaShift)
	return nil
}

func e9BoundedReductions() error {
	rng := rand.New(rand.NewSource(seed))
	g, err := graph.RandomRegular(12, 3, rng)
	if err != nil {
		return err
	}
	reduced := boundedlb.MDSReduction(g)
	fmt.Printf("MDS reduction (Thm 3.3): n=%d maxDeg=%d -> n=%d maxDeg=%d (<= 2x)\n",
		g.N(), g.MaxDegree(), reduced.N(), reduced.MaxDegree())
	if reduced.MaxDegree() > 2*g.MaxDegree() {
		return fmt.Errorf("degree blow-up in MDS reduction")
	}
	spanner := boundedlb.SpannerReduction(g)
	fmt.Printf("2-spanner reduction (Thm 3.4): n=%d maxDeg=%d -> n=%d maxDeg=%d\n",
		g.N(), g.MaxDegree(), spanner.N(), spanner.MaxDegree())
	return nil
}

func e10ApproxMaxIS() error {
	fam, err := apxmaxislb.New(apxmaxislb.Params{K: 2, L: 2, T: 1})
	if err != nil {
		return err
	}
	x := comm.NewBits(4)
	x.Set(0, true)
	g, err := fam.Build(x, x)
	if err != nil {
		return err
	}
	yes, _, err := solver.MaxWeightIndependentSet(g)
	if err != nil {
		return err
	}
	zero := comm.NewBits(4)
	g0, err := fam.Build(zero, zero)
	if err != nil {
		return err
	}
	no, _, err := solver.MaxWeightIndependentSet(g0)
	if err != nil {
		return err
	}
	fmt.Printf("code-gadget MaxIS (Thm 4.3): YES=%d (=%d), NO=%d (<=%d), gap ratio %.4f -> 7/8\n",
		yes, fam.YesWeight(), no, fam.NoWeight(), float64(fam.NoWeight())/float64(fam.YesWeight()))
	return nil
}

func e11ApproxMaxISLinear() error {
	fam, err := apxmaxislb.NewLinear(apxmaxislb.Params{K: 2, L: 2, T: 1})
	if err != nil {
		return err
	}
	x := comm.NewBits(2)
	x.Set(0, true)
	g, err := fam.Build(x, x)
	if err != nil {
		return err
	}
	alpha, _, err := solver.MaxIndependentSetSize(g)
	if err != nil {
		return err
	}
	fmt.Printf("linear MaxIS variant (Thm 4.2): alpha=%d, NO size=%d, gap ratio %.4f -> 5/6\n",
		alpha, fam.NoSize(), float64(fam.NoSize())/float64(alpha))
	return nil
}

func e12TwoMDS() error {
	p, err := kmdsParams()
	if err != nil {
		return err
	}
	fam, err := kmdslb.NewTwoMDS(p)
	if err != nil {
		return err
	}
	fmt.Print("Definition 1.1 exhaustive verification (T=4)... ")
	if err := lbfamily.Verify(fam); err != nil {
		return err
	}
	fmt.Println("OK")
	x := comm.NewBits(4)
	x.Set(1, true)
	g, err := fam.Build(x, x)
	if err != nil {
		return err
	}
	yes, err := fam.GapWeights(g)
	if err != nil {
		return err
	}
	zero := comm.NewBits(4)
	g0, err := fam.Build(zero, zero)
	if err != nil {
		return err
	}
	no, err := fam.GapWeights(g0)
	if err != nil {
		return err
	}
	fmt.Printf("2-MDS gap (Thm 4.4): YES weight=%d, NO weight=%d (> r=2)\n", yes, no)
	return nil
}

func e13KMDS() error {
	p, err := kmdsParams()
	if err != nil {
		return err
	}
	fam, err := kmdslb.NewKMDS(p, 3)
	if err != nil {
		return err
	}
	fmt.Print("Definition 1.1 sampled verification (k=3, T=4)... ")
	if err := lbfamily.VerifySampled(fam, rand.New(rand.NewSource(seed)), 20); err != nil {
		return err
	}
	fmt.Println("OK")
	x := comm.NewBits(4)
	x.Set(2, true)
	g, err := fam.Build(x, x)
	if err != nil {
		return err
	}
	ok, err := fam.Predicate(g)
	if err != nil {
		return err
	}
	fmt.Printf("k-MDS (Thm 4.5): subdivided instance n=%d, weight-2 3-dominating set on intersecting inputs: %v\n",
		g.N(), ok)
	return nil
}

func e14NodeSteiner() error {
	p, err := kmdsParams()
	if err != nil {
		return err
	}
	fam, err := kmdslb.NewNodeSteiner(p)
	if err != nil {
		return err
	}
	fmt.Print("Definition 1.1 exhaustive verification (T=4)... ")
	if err := lbfamily.Verify(fam); err != nil {
		return err
	}
	fmt.Println("OK")
	x := comm.NewBits(4)
	x.Set(2, true)
	g, err := fam.Build(x, x)
	if err != nil {
		return err
	}
	yes, err := solver.NodeWeightedSteinerEnum(g, fam.Terminals())
	if err != nil {
		return err
	}
	zero := comm.NewBits(4)
	g0, err := fam.Build(zero, zero)
	if err != nil {
		return err
	}
	no, err := solver.NodeWeightedSteinerEnum(g0, fam.Terminals())
	if err != nil {
		return err
	}
	fmt.Printf("node-Steiner gap (Thm 4.6): YES weight=%d, NO weight=%d (> r=%d)\n", yes, no, p.R)
	return nil
}

func e15DirSteiner() error {
	p, err := kmdsParams()
	if err != nil {
		return err
	}
	fam, err := kmdslb.NewDirSteiner(p)
	if err != nil {
		return err
	}
	fmt.Print("Definition 1.1 exhaustive verification (T=4, directed)... ")
	if err := lbfamily.VerifyDigraph(fam); err != nil {
		return err
	}
	fmt.Println("OK")
	x := comm.NewBits(4)
	x.Set(0, true)
	d, err := fam.Build(x, x)
	if err != nil {
		return err
	}
	ok, err := fam.Predicate(d)
	if err != nil {
		return err
	}
	fmt.Printf("directed Steiner (Thm 4.7): weight-2 tree rooted at R on intersecting inputs: %v\n", ok)
	return nil
}

func e16Aggregate() error {
	p, err := kmdsParams()
	if err != nil {
		return err
	}
	fam, err := kmdslb.NewRestricted(p)
	if err != nil {
		return err
	}
	x := comm.NewBits(4)
	x.Set(0, true)
	g, err := fam.Build(x, x)
	if err != nil {
		return err
	}
	side := make([]byte, g.N())
	alice, bob := fam.Sides()
	for _, v := range alice {
		side[v] = aggregate.OwnerAlice
	}
	for _, v := range bob {
		side[v] = aggregate.OwnerBob
	}
	for _, v := range fam.SharedElements() {
		side[v] = aggregate.OwnerShared
	}
	res, err := aggregate.SimulateTwoParty(g, aggregate.GreedyDominatingSet{}, side, 16)
	if err != nil {
		return err
	}
	perRoundPerElement := float64(res.TwoPartyBits) / float64(res.Rounds) / float64(len(fam.SharedElements()))
	fmt.Printf("aggregate simulation (Thm 4.8): %d rounds, %d two-party bits, %.1f bits/round/element (O(log n))\n",
		res.Rounds, res.TwoPartyBits, perRoundPerElement)
	return nil
}

func e17Limits() error {
	fam, err := mdslb.New(2)
	if err != nil {
		return err
	}
	x := comm.NewBits(4)
	x.Set(3, true)
	g, err := fam.Build(x, x)
	if err != nil {
		return err
	}
	res, err := limits.TwoApproxMDS(g, fam.AliceSide())
	if err != nil {
		return err
	}
	fmt.Printf("Claim 5.8 on the MDS family: ratio %.3f (<=2) using %d bits\n", res.Ratio, res.Bits)
	cutFam, err := maxcutlb.New(2)
	if err != nil {
		return err
	}
	gc, err := cutFam.Build(x, x)
	if err != nil {
		return err
	}
	cutRes, err := limits.WeightedMaxCut23(gc, cutFam.AliceSide())
	if err != nil {
		return err
	}
	fmt.Printf("Claim 5.5 on the max-cut family: ratio %.3f (>=2/3) using %d bits\n", cutRes.Ratio, cutRes.Bits)
	return nil
}

func e18PLS() error {
	rng := rand.New(rand.NewSource(seed))
	g := graph.Gnp(16, 0.4, rng)
	for !g.IsConnected() {
		g = graph.Gnp(16, 0.4, rng)
	}
	inst := pls.NewInstance(g)
	for _, e := range g.Edges() {
		if err := inst.MarkH(e.U, e.V); err != nil {
			return err
		}
	}
	inst.S, inst.T = 0, g.N()-1
	inst.K = 1
	schemes := []pls.Scheme{
		pls.Connectivity{}, pls.STConnectivity{}, pls.CycleContainment{},
		pls.WdistAtLeast{}, pls.MatchingAtLeast{},
	}
	maxBits, proved := 0, 0
	for _, s := range schemes {
		labels, ok, err := s.Prove(inst)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		proved++
		if !pls.Accepts(s, inst, labels) {
			return fmt.Errorf("%s rejected honest labels", s.Name())
		}
		if bits := pls.ProofBits(inst, labels); bits > maxBits {
			maxBits = bits
		}
	}
	fmt.Printf("proof labeling schemes (Claims 5.12-5.13): %d/%d schemes proved, max proof %d bits\n",
		proved, len(schemes), maxBits)
	return nil
}
