// Command hardness is the experiment runner: it regenerates the
// quantitative content of the paper's theorems (see README.md's experiment
// index).
//
// Usage:
//
//	hardness -experiment all          # run everything
//	hardness -experiment E1           # one experiment
//	hardness -list                    # list experiment ids
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"congesthard/internal/algorithms"
	"congesthard/internal/comm"
	"congesthard/internal/constructions/apxmaxislb"
	"congesthard/internal/constructions/boundedlb"
	"congesthard/internal/constructions/hamlb"
	"congesthard/internal/constructions/kmdslb"
	"congesthard/internal/constructions/maxcutlb"
	"congesthard/internal/constructions/mdslb"
	"congesthard/internal/constructions/mvclb"
	"congesthard/internal/constructions/steinerlb"
	"congesthard/internal/cover"
	"congesthard/internal/graph"
	"congesthard/internal/lbfamily"
	"congesthard/internal/limits"
	"congesthard/internal/solver"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (E1..E17) or 'all'")
	list := flag.Bool("list", false, "list experiments")
	flag.Parse()
	if err := run(*experiment, *list); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type experimentFunc func() error

func experiments() map[string]experimentFunc {
	return map[string]experimentFunc{
		"E1":  e1MDS,
		"E2":  e2HamPath,
		"E5":  e5Steiner,
		"E6":  e6MaxCut,
		"E7":  e7MaxCutApprox,
		"E8":  e8Bounded,
		"E10": e10ApproxMaxIS,
		"E12": e12TwoMDS,
		"E17": e17Limits,
	}
}

func run(which string, list bool) error {
	exps := experiments()
	ids := make([]string, 0, len(exps))
	for id := range exps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	if list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return nil
	}
	if which != "all" {
		fn, ok := exps[which]
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", which)
		}
		return fn()
	}
	for _, id := range ids {
		fmt.Printf("=== %s ===\n", id)
		if err := exps[id](); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println()
	}
	return nil
}

func scalingTable(name string, build func(k int) (lbfamily.Stats, comm.Function, error), ks []int) error {
	fmt.Printf("%s scaling: k, n, |E_cut|, K, implied rounds LB\n", name)
	for _, k := range ks {
		stats, f, err := build(k)
		if err != nil {
			return err
		}
		bound, err := lbfamily.ImpliedLowerBound(stats, f)
		if err != nil {
			return err
		}
		fmt.Printf("  k=%-4d n=%-5d cut=%-5d K=%-7d LB=%.1f\n", k, stats.N, stats.CutSize, stats.K, bound)
	}
	return nil
}

func e1MDS() error {
	fam, err := mdslb.New(2)
	if err != nil {
		return err
	}
	fmt.Print("Definition 1.1 exhaustive verification (k=2)... ")
	if err := lbfamily.Verify(fam); err != nil {
		return err
	}
	fmt.Println("OK")
	return scalingTable("MDS (Thm 2.1)", func(k int) (lbfamily.Stats, comm.Function, error) {
		f, err := mdslb.New(k)
		if err != nil {
			return lbfamily.Stats{}, nil, err
		}
		stats, err := lbfamily.MeasureStats(f)
		return stats, f.Func(), err
	}, []int{2, 4, 8, 16, 32})
}

func e2HamPath() error {
	fam, err := hamlb.New(2)
	if err != nil {
		return err
	}
	fmt.Print("Definition 1.1 exhaustive verification (k=2)... ")
	if err := lbfamily.VerifyDigraph(fam); err != nil {
		return err
	}
	fmt.Println("OK")
	return scalingTable("Hamiltonian path (Thm 2.2)", func(k int) (lbfamily.Stats, comm.Function, error) {
		f, err := hamlb.New(k)
		if err != nil {
			return lbfamily.Stats{}, nil, err
		}
		stats, err := lbfamily.MeasureDigraphStats(f)
		return stats, f.Func(), err
	}, []int{2, 4, 8, 16})
}

func e5Steiner() error {
	fam, err := steinerlb.New(2)
	if err != nil {
		return err
	}
	x := comm.NewBits(4)
	x.Set(1, true)
	g, err := fam.Build(x, x)
	if err != nil {
		return err
	}
	tree, err := fam.WitnessSteinerTree(x, x)
	if err != nil {
		return err
	}
	_, ok := solver.IsSteinerTree(g, fam.Terminals(), tree)
	fmt.Printf("Steiner family (Thm 2.7): witness tree of %d edges (target %d), valid: %v\n",
		len(tree), fam.TargetEdges(), ok)
	set := fam.DominatingSetFromSteinerTree(tree)
	inner, err := fam.MDS.Build(x, x)
	if err != nil {
		return err
	}
	fmt.Printf("converse extraction: %d vertices dominate the MDS graph: %v\n",
		len(set), solver.IsDominatingSet(inner, set))
	return nil
}

func e6MaxCut() error {
	fam, err := maxcutlb.New(2)
	if err != nil {
		return err
	}
	x := comm.NewBits(4)
	x.Set(2, true)
	g, err := fam.Build(x, x)
	if err != nil {
		return err
	}
	best, _, err := solver.MaxCut(g)
	if err != nil {
		return err
	}
	fmt.Printf("max-cut family (Thm 2.8): intersecting optimum %d, target M = %d\n", best, fam.Target())
	zero := comm.NewBits(4)
	g0, err := fam.Build(zero, zero)
	if err != nil {
		return err
	}
	best0, _, err := solver.MaxCut(g0)
	if err != nil {
		return err
	}
	fmt.Printf("disjoint optimum %d < M: %v\n", best0, best0 < fam.Target())
	return nil
}

func e7MaxCutApprox() error {
	rng := rand.New(rand.NewSource(1))
	fmt.Println("Thm 2.9: sampled (1-eps) max-cut vs exact collection")
	for _, n := range []int{12, 16, 20} {
		g := graph.Gnp(n, 0.5, rng)
		for !g.IsConnected() {
			g = graph.Gnp(n, 0.5, rng)
		}
		opt, _, err := solver.MaxCut(g)
		if err != nil {
			return err
		}
		res, err := algorithms.MaxCutApprox(g, 0.5, rng)
		if err != nil {
			return err
		}
		fmt.Printf("  n=%-4d opt=%-5d achieved=%-5d ratio=%.3f rounds=%d\n",
			n, opt, res.AchievedValue, float64(res.AchievedValue)/float64(opt), res.Rounds)
	}
	return nil
}

func e8Bounded() error {
	base, err := mvclb.New(2)
	if err != nil {
		return err
	}
	fmt.Print("MVC base family exhaustive verification (k=2)... ")
	if err := lbfamily.Verify(base); err != nil {
		return err
	}
	fmt.Println("OK")
	fam, err := boundedlb.NewFamily(2, 3)
	if err != nil {
		return err
	}
	x := comm.NewBits(4)
	x.Set(0, true)
	inst, err := fam.BuildInstance(x, x)
	if err != nil {
		return err
	}
	g := inst.Result.Graph
	fmt.Printf("derived bounded-degree instance: n'=%d, maxDeg=%d (<=5), cut=%d, alpha-shift=%d\n",
		g.N(), g.MaxDegree(), inst.Result.CutSize, inst.Result.AlphaShift)
	return nil
}

func e10ApproxMaxIS() error {
	fam, err := apxmaxislb.New(apxmaxislb.Params{K: 2, L: 2, T: 1})
	if err != nil {
		return err
	}
	x := comm.NewBits(4)
	x.Set(0, true)
	g, err := fam.Build(x, x)
	if err != nil {
		return err
	}
	yes, _, err := solver.MaxWeightIndependentSet(g)
	if err != nil {
		return err
	}
	zero := comm.NewBits(4)
	g0, err := fam.Build(zero, zero)
	if err != nil {
		return err
	}
	no, _, err := solver.MaxWeightIndependentSet(g0)
	if err != nil {
		return err
	}
	fmt.Printf("code-gadget MaxIS (Thm 4.3): YES=%d (=%d), NO=%d (<=%d), gap ratio %.4f -> 7/8\n",
		yes, fam.YesWeight(), no, fam.NoWeight(), float64(fam.NoWeight())/float64(fam.YesWeight()))
	return nil
}

func e12TwoMDS() error {
	c, err := cover.Find(4, 12, 2, 7, 500)
	if err != nil {
		return err
	}
	fam, err := kmdslb.NewTwoMDS(kmdslb.Params{Collection: c, R: 2})
	if err != nil {
		return err
	}
	x := comm.NewBits(4)
	x.Set(1, true)
	g, err := fam.Build(x, x)
	if err != nil {
		return err
	}
	yes, err := fam.GapWeights(g)
	if err != nil {
		return err
	}
	zero := comm.NewBits(4)
	g0, err := fam.Build(zero, zero)
	if err != nil {
		return err
	}
	no, err := fam.GapWeights(g0)
	if err != nil {
		return err
	}
	fmt.Printf("2-MDS gap (Thm 4.4): YES weight=%d, NO weight=%d (> r=2)\n", yes, no)
	return nil
}

func e17Limits() error {
	fam, err := mdslb.New(2)
	if err != nil {
		return err
	}
	x := comm.NewBits(4)
	x.Set(3, true)
	g, err := fam.Build(x, x)
	if err != nil {
		return err
	}
	res, err := limits.TwoApproxMDS(g, fam.AliceSide())
	if err != nil {
		return err
	}
	fmt.Printf("Claim 5.8 on the MDS family: ratio %.3f (<=2) using %d bits\n", res.Ratio, res.Bits)
	cutFam, err := maxcutlb.New(2)
	if err != nil {
		return err
	}
	gc, err := cutFam.Build(x, x)
	if err != nil {
		return err
	}
	cutRes, err := limits.WeightedMaxCut23(gc, cutFam.AliceSide())
	if err != nil {
		return err
	}
	fmt.Printf("Claim 5.5 on the max-cut family: ratio %.3f (>=2/3) using %d bits\n", cutRes.Ratio, cutRes.Bits)
	return nil
}
