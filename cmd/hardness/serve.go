package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"congesthard/internal/serve"
)

// runServe runs the hardness job server until SIGINT/SIGTERM, then drains:
// readiness flips to 503, in-flight and queued jobs get until
// -drain-timeout to finish (past it they are cancelled with partial
// reports), and the process exits 0 — the clean-shutdown contract the
// deployment layer (and the CI smoke job) relies on.
func runServe(argv []string) error {
	fs := flag.NewFlagSet("hardness serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 2, "concurrent certification sweeps")
	queueDepth := fs.Int("queue", 16, "submission queue bound; a full queue sheds with 429 + Retry-After")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "grace period for in-flight jobs on shutdown")
	defaultTimeout := fs.Duration("default-timeout", 30*time.Second, "per-job deadline when the submission picks none")
	maxTimeout := fs.Duration("max-timeout", 2*time.Minute, "cap on the per-job deadline a submission may request")
	cacheSize := fs.Int("cache", 16, "LRU capacity for built family bases")
	sweepWorkers := fs.Int("sweep-workers", 0, "shards per certification sweep; 0 = GOMAXPROCS (consider 1 when -workers > 1 keeps all cores busy)")
	enablePprof := fs.Bool("pprof", false, "mount net/http/pprof under GET /debug/pprof/ (off by default: profiling endpoints expose internals and burn CPU)")
	if err := fs.Parse(argv); err != nil {
		return err
	}

	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		CacheSize:      *cacheSize,
		SweepWorkers:   *sweepWorkers,
		EnablePprof:    *enablePprof,
	}, nil)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Printf("hardness serve listening on %s (workers=%d queue=%d)\n", ln.Addr(), *workers, *queueDepth)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop()
	}

	// Drain while still serving HTTP, so status polls and readyz answer
	// during the grace period; only then shut the listener down.
	fmt.Println("draining: readiness down, finishing in-flight jobs")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	clean := srv.Drain(dctx)
	shutCtx, cancelShut := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancelShut()
	httpSrv.Shutdown(shutCtx)
	if clean {
		fmt.Println("drained cleanly")
	} else {
		fmt.Println("drain deadline hit: remaining jobs cancelled with partial reports")
	}
	return nil
}
