// Package main_test hosts the benchmark harness: one benchmark per
// experiment in the E1-E18 index documented in README.md. Each benchmark
// regenerates its experiment's data — the family's measured parameters
// (n, |E_cut|, K), the Theorem 1.1 implied round bound, gap values,
// protocol bit costs — and reports the headline quantity as custom
// benchmark metrics, so `go test -bench=.` reproduces the paper's
// "tables" (its theorems' quantitative content).
package main_test

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"congesthard/internal/aggregate"
	"congesthard/internal/algorithms"
	"congesthard/internal/comm"
	"congesthard/internal/congest"
	"congesthard/internal/constructions/apxmaxislb"
	"congesthard/internal/constructions/boundedlb"
	"congesthard/internal/constructions/hamlb"
	"congesthard/internal/constructions/kmdslb"
	"congesthard/internal/constructions/maxcutlb"
	"congesthard/internal/constructions/mdslb"
	"congesthard/internal/constructions/mvclb"
	"congesthard/internal/constructions/steinerlb"
	"congesthard/internal/cover"
	"congesthard/internal/dicongest"
	"congesthard/internal/faults"
	"congesthard/internal/graph"
	"congesthard/internal/lbfamily"
	"congesthard/internal/limits"
	"congesthard/internal/obs"
	"congesthard/internal/pls"
	"congesthard/internal/reduction"
	"congesthard/internal/serve"
	"congesthard/internal/serve/client"
	"congesthard/internal/solver"
)

func reportFamily(b *testing.B, stats lbfamily.Stats, f interface{ Func() comm.Function }) {
	b.Helper()
	lb, err := lbfamily.ImpliedLowerBound(stats, f.Func())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(stats.N), "n")
	b.ReportMetric(float64(stats.CutSize), "cut")
	b.ReportMetric(float64(stats.K), "K")
	b.ReportMetric(lb, "roundsLB")
	b.ReportMetric(lb/float64(stats.N), "roundsLB/n")
}

// BenchmarkE1MDSFamily: Theorem 2.1 — builds the MDS family at growing k
// and reports the implied Ω(K/(|cut|·log n)) bound; the roundsLB/n metric
// grows with n, exhibiting the super-linear (near-quadratic) shape.
func BenchmarkE1MDSFamily(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, k := range []int{2, 4, 8, 16, 32} {
			fam, err := mdslb.New(k)
			if err != nil {
				b.Fatal(err)
			}
			stats, err := lbfamily.MeasureStats(fam)
			if err != nil {
				b.Fatal(err)
			}
			if k == 32 && i == 0 {
				reportFamily(b, stats, fam)
			}
		}
	}
}

// BenchmarkE1MDSPredicate times the exact predicate evaluation at k=2
// (the verification workload).
func BenchmarkE1MDSPredicate(b *testing.B) {
	fam, _ := mdslb.New(2)
	x, _ := comm.BitsFromUint64(4, 0b0101)
	y, _ := comm.BitsFromUint64(4, 0b0110)
	g, err := fam.Build(x, y)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fam.Predicate(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2HamPath: Theorem 2.2 — the directed Hamiltonian path family.
func BenchmarkE2HamPath(b *testing.B) {
	fam, _ := hamlb.New(2)
	x, _ := comm.BitsFromUint64(4, 0b1001)
	y, _ := comm.BitsFromUint64(4, 0b1010)
	d, err := fam.Build(x, y)
	if err != nil {
		b.Fatal(err)
	}
	stats, err := lbfamily.MeasureDigraphStats(fam)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(stats.N), "n")
	b.ReportMetric(float64(stats.CutSize), "cut")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fam.Predicate(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3HamCycle: Theorem 2.3 — the cycle variant's predicate.
func BenchmarkE3HamCycle(b *testing.B) {
	fam, _ := hamlb.NewCycle(2)
	x, _ := comm.BitsFromUint64(4, 0b0011)
	d, err := fam.Build(x, x)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := fam.Predicate(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4TwoECSS: Theorem 2.5 — Claim 2.7 equivalence check workload.
func BenchmarkE4TwoECSS(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, _ := graph.HamiltonianGnp(10, 0.2, rng)
	for i := 0; i < b.N; i++ {
		ok, err := solver.HasTwoECSSWithEdges(g, g.N())
		if err != nil || !ok {
			b.Fatal(err, ok)
		}
	}
}

// BenchmarkE5Steiner: Theorem 2.7 — witness-tree construction plus
// validation on the Steiner family.
func BenchmarkE5Steiner(b *testing.B) {
	fam, _ := steinerlb.New(2)
	x, _ := comm.BitsFromUint64(4, 0b0100)
	g, err := fam.Build(x, x)
	if err != nil {
		b.Fatal(err)
	}
	stats, _ := lbfamily.MeasureStats(fam)
	reportFamily(b, stats, fam)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, err := fam.WitnessSteinerTree(x, x)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := solver.IsSteinerTree(g, fam.Terminals(), tree); !ok {
			b.Fatal("witness invalid")
		}
	}
}

// BenchmarkE6MaxCut: Theorem 2.8 — exact max-cut on the weighted family.
func BenchmarkE6MaxCut(b *testing.B) {
	fam, _ := maxcutlb.New(2)
	x, _ := comm.BitsFromUint64(4, 0b1000)
	g, err := fam.Build(x, x)
	if err != nil {
		b.Fatal(err)
	}
	stats, _ := lbfamily.MeasureStats(fam)
	reportFamily(b, stats, fam)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fam.Predicate(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7MaxCutApprox: Theorem 2.9 — the (1-ε) sampling algorithm's
// rounds vs the collect-everything exact algorithm, plus achieved ratio.
func BenchmarkE7MaxCutApprox(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := graph.Gnp(24, 0.5, rng)
	opt, _, err := solver.MaxCut(g)
	if err != nil {
		b.Fatal(err)
	}
	var lastRatio float64
	var sampledRounds, exactRounds int
	for i := 0; i < b.N; i++ {
		res, err := algorithms.MaxCutApprox(g, 0.5, rng)
		if err != nil {
			b.Fatal(err)
		}
		lastRatio = float64(res.AchievedValue) / float64(opt)
		sampledRounds = res.Rounds
		exact, err := algorithms.CollectAndSolve(g, func(gg *graph.Graph) (interface{}, error) {
			w, _, err := solver.MaxCut(gg)
			return w, err
		})
		if err != nil {
			b.Fatal(err)
		}
		exactRounds = exact.Rounds
	}
	b.ReportMetric(lastRatio, "ratio")
	b.ReportMetric(float64(sampledRounds), "roundsSampled")
	b.ReportMetric(float64(exactRounds), "roundsExact")
}

// BenchmarkE8BoundedPipeline: Theorem 3.1 — the G -> phi -> phi' -> G'
// reduction chain on the MVC base family, reporting the derived graph's
// degree, size and cut.
func BenchmarkE8BoundedPipeline(b *testing.B) {
	fam, err := boundedlb.NewFamily(2, 3)
	if err != nil {
		b.Fatal(err)
	}
	x, _ := comm.BitsFromUint64(4, 0b0110)
	var inst *boundedlb.Instance
	for i := 0; i < b.N; i++ {
		inst, err = fam.BuildInstance(x, x)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(inst.Result.Graph.N()), "n'")
	b.ReportMetric(float64(inst.Result.Graph.MaxDegree()), "maxDeg")
	b.ReportMetric(float64(inst.Result.CutSize), "cut")
}

// BenchmarkE9BoundedReductions: Theorems 3.2-3.3 — MVC complement and the
// MDS edge-vertex reduction on bounded-degree instances.
func BenchmarkE9BoundedReductions(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g, err := graph.RandomRegular(12, 3, rng)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		reduced := boundedlb.MDSReduction(g)
		if reduced.MaxDegree() > 2*g.MaxDegree() {
			b.Fatal("degree blow-up")
		}
	}
}

// BenchmarkE10ApproxMaxIS: Theorems 4.1/4.3 — the code-gadget gap family:
// exact weighted MaxIS on YES and NO instances, reporting the gap ratio.
func BenchmarkE10ApproxMaxIS(b *testing.B) {
	fam, err := apxmaxislb.New(apxmaxislb.Params{K: 2, L: 2, T: 1})
	if err != nil {
		b.Fatal(err)
	}
	x, _ := comm.BitsFromUint64(4, 0b0001)
	gYes, err := fam.Build(x, x)
	if err != nil {
		b.Fatal(err)
	}
	var yes int64
	for i := 0; i < b.N; i++ {
		yes, _, err = solver.MaxWeightIndependentSet(gYes)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(fam.NoWeight())/float64(yes), "gapRatio")
	b.ReportMetric(float64(yes), "yesWeight")
}

// BenchmarkE11ApproxMaxISLinear: Theorem 4.2 — the linear (5/6+ε) variant.
func BenchmarkE11ApproxMaxISLinear(b *testing.B) {
	fam, err := apxmaxislb.NewLinear(apxmaxislb.Params{K: 2, L: 2, T: 1})
	if err != nil {
		b.Fatal(err)
	}
	x, _ := comm.BitsFromUint64(2, 0b01)
	g, err := fam.Build(x, x)
	if err != nil {
		b.Fatal(err)
	}
	var alpha int
	for i := 0; i < b.N; i++ {
		alpha, _, err = solver.MaxIndependentSetSize(g)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(fam.NoSize())/float64(alpha), "gapRatio")
}

func kmdsParams(b *testing.B) kmdslb.Params {
	b.Helper()
	c, err := cover.Find(4, 12, 2, 7, 500)
	if err != nil {
		b.Fatal(err)
	}
	return kmdslb.Params{Collection: c, R: 2}
}

// BenchmarkE12TwoMDS: Theorem 4.4 — the weighted 2-MDS gap (2 vs > r).
func BenchmarkE12TwoMDS(b *testing.B) {
	fam, err := kmdslb.NewTwoMDS(kmdsParams(b))
	if err != nil {
		b.Fatal(err)
	}
	x, _ := comm.BitsFromUint64(4, 0b0010)
	g, err := fam.Build(x, x)
	if err != nil {
		b.Fatal(err)
	}
	zero := comm.NewBits(4)
	g0, err := fam.Build(zero, zero)
	if err != nil {
		b.Fatal(err)
	}
	var yes, no int64
	for i := 0; i < b.N; i++ {
		yes, err = fam.GapWeights(g)
		if err != nil {
			b.Fatal(err)
		}
		no, err = fam.GapWeights(g0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(yes), "yesWeight")
	b.ReportMetric(float64(no), "noWeight")
}

// BenchmarkE13KMDS: Theorem 4.5 — the k = 3 subdivision variant.
func BenchmarkE13KMDS(b *testing.B) {
	fam, err := kmdslb.NewKMDS(kmdsParams(b), 3)
	if err != nil {
		b.Fatal(err)
	}
	x, _ := comm.BitsFromUint64(4, 0b0100)
	g, err := fam.Build(x, x)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		ok, err := fam.Predicate(g)
		if err != nil || !ok {
			b.Fatal(err, ok)
		}
	}
}

// BenchmarkE14NodeSteiner: Theorem 4.6 — node-weighted Steiner gap.
func BenchmarkE14NodeSteiner(b *testing.B) {
	fam, err := kmdslb.NewNodeSteiner(kmdsParams(b))
	if err != nil {
		b.Fatal(err)
	}
	x, _ := comm.BitsFromUint64(4, 0b1000)
	g, err := fam.Build(x, x)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		ok, err := fam.Predicate(g)
		if err != nil || !ok {
			b.Fatal(err, ok)
		}
	}
}

// BenchmarkE15DirSteiner: Theorem 4.7 — directed Steiner gap.
func BenchmarkE15DirSteiner(b *testing.B) {
	fam, err := kmdslb.NewDirSteiner(kmdsParams(b))
	if err != nil {
		b.Fatal(err)
	}
	x, _ := comm.BitsFromUint64(4, 0b0001)
	d, err := fam.Build(x, x)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		ok, err := fam.Predicate(d)
		if err != nil || !ok {
			b.Fatal(err, ok)
		}
	}
}

// BenchmarkE16Aggregate: Theorem 4.8 — the two-party aggregate simulation
// on the Figure 7 construction, reporting bits per round per shared
// element (should be O(log n), independent of the elements' degrees).
func BenchmarkE16Aggregate(b *testing.B) {
	fam, err := kmdslb.NewRestricted(kmdsParams(b))
	if err != nil {
		b.Fatal(err)
	}
	x, _ := comm.BitsFromUint64(4, 0b0001)
	g, err := fam.Build(x, x)
	if err != nil {
		b.Fatal(err)
	}
	side := make([]byte, g.N())
	alice, bob := fam.Sides()
	for _, v := range alice {
		side[v] = aggregate.OwnerAlice
	}
	for _, v := range bob {
		side[v] = aggregate.OwnerBob
	}
	for _, v := range fam.SharedElements() {
		side[v] = aggregate.OwnerShared
	}
	var res *aggregate.Result
	for i := 0; i < b.N; i++ {
		res, err = aggregate.SimulateTwoParty(g, aggregate.GreedyDominatingSet{}, side, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	perRoundPerElement := float64(res.TwoPartyBits) / float64(res.Rounds) / float64(len(fam.SharedElements()))
	b.ReportMetric(perRoundPerElement, "bits/round/elem")
}

// BenchmarkE17LimitProtocols: Claims 5.5-5.9 — the limitation protocols on
// the actual lower-bound families, reporting achieved ratios and bit
// costs.
func BenchmarkE17LimitProtocols(b *testing.B) {
	mdsFam, _ := mdslb.New(2)
	x, _ := comm.BitsFromUint64(4, 0b0101)
	gMDS, err := mdsFam.Build(x, x)
	if err != nil {
		b.Fatal(err)
	}
	cutFam, _ := maxcutlb.New(2)
	gCut, err := cutFam.Build(x, x)
	if err != nil {
		b.Fatal(err)
	}
	var mdsRes, cutRes *limits.ProtocolResult
	for i := 0; i < b.N; i++ {
		mdsRes, err = limits.TwoApproxMDS(gMDS, mdsFam.AliceSide())
		if err != nil {
			b.Fatal(err)
		}
		cutRes, err = limits.WeightedMaxCut23(gCut, cutFam.AliceSide())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mdsRes.Ratio, "mdsRatio")
	b.ReportMetric(float64(mdsRes.Bits), "mdsBits")
	b.ReportMetric(cutRes.Ratio, "cutRatio")
	b.ReportMetric(float64(cutRes.Bits), "cutBits")
}

// BenchmarkE18PLS: Claims 5.12-5.13 and Lemma 5.1 — prove+verify cycles
// for a representative scheme set, reporting the maximum proof size.
func BenchmarkE18PLS(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := graph.Gnp(16, 0.4, rng)
	for !g.IsConnected() {
		g = graph.Gnp(16, 0.4, rng)
	}
	inst := pls.NewInstance(g)
	for _, e := range g.Edges() {
		if err := inst.MarkH(e.U, e.V); err != nil {
			b.Fatal(err)
		}
	}
	inst.S, inst.T = 0, g.N()-1
	inst.K = 1
	schemes := []pls.Scheme{
		pls.Connectivity{}, pls.STConnectivity{}, pls.CycleContainment{},
		pls.WdistAtLeast{}, pls.MatchingAtLeast{},
	}
	maxBits := 0
	for i := 0; i < b.N; i++ {
		for _, s := range schemes {
			labels, ok, err := s.Prove(inst)
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				continue
			}
			if !pls.Accepts(s, inst, labels) {
				b.Fatalf("%s rejected honest labels", s.Name())
			}
			if bits := pls.ProofBits(inst, labels); bits > maxBits {
				maxBits = bits
			}
		}
	}
	b.ReportMetric(float64(maxBits), "proofBits")
}

// chatterNode floods a fixed payload every round, reusing its outbox so
// that the measured allocations are the simulator's own.
type chatterNode struct {
	outbox []congest.Message
	budget int
}

func (c *chatterNode) Round(round int, inbox []congest.Incoming) ([]congest.Message, bool) {
	if round >= c.budget {
		return nil, true
	}
	return c.outbox, false
}

func (c *chatterNode) Output() interface{} { return nil }

// BenchmarkCongestRunCore measures the simulator core: an all-to-neighbors
// flood on a 64-vertex degree-8 circulant graph. allocs/op is flat across
// the rounds sub-benchmarks — the per-round simulation is allocation-free,
// so only the O(1) per-Run setup allocates (compare rounds=64 with
// rounds=1024: same allocs/op). The faults variant runs the same flood
// under a drop+delay plan: injection stays allocation-free per round too,
// only the per-Run injector setup (delay rings) adds a constant.
func BenchmarkCongestRunCore(b *testing.B) {
	const n = 64
	g := graph.New(n)
	for v := 0; v < n; v++ {
		for off := 1; off <= 4; off++ {
			g.MustAddEdge(v, (v+off)%n)
		}
	}
	var err error
	for _, bc := range []struct {
		rounds int
		plan   *faults.Plan
	}{
		{64, nil},
		{1024, nil},
		{1024, &faults.Plan{Seed: 5, DropProb: 0.02, MaxDelay: 2}},
	} {
		name := fmt.Sprintf("rounds=%d", bc.rounds)
		if bc.plan != nil {
			name += ",faults"
		}
		rounds, plan := bc.rounds, bc.plan
		b.Run(name, func(b *testing.B) {
			factory := func(local congest.Local) congest.Node {
				out := make([]congest.Message, len(local.Neighbors))
				for i, nbr := range local.Neighbors {
					out[i] = congest.Message{To: nbr, Payload: int64(local.ID)}
				}
				return &chatterNode{outbox: out, budget: rounds}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var res *congest.Result
			for i := 0; i < b.N; i++ {
				res, err = congest.Run(g, factory, congest.Options{MaxRounds: rounds + 2, Faults: plan})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Rounds), "rounds/op")
			b.ReportMetric(float64(res.Messages), "msgs/op")
		})
	}
}

// diChatterNode is chatterNode for the directed simulator.
type diChatterNode struct {
	outbox []dicongest.Message
	budget int
}

func (c *diChatterNode) Round(round int, inbox []dicongest.Incoming) ([]dicongest.Message, bool) {
	if round >= c.budget {
		return nil, true
	}
	return c.outbox, false
}

func (c *diChatterNode) Output() interface{} { return nil }

// BenchmarkDicongestRunCore measures the directed simulator core: an
// all-to-links flood on a 64-vertex out-degree-4 directed circulant (each
// vertex has 8 full-duplex links, 512 messages per round network-wide).
// allocs/op is flat across the rounds sub-benchmarks — the per-round
// simulation is allocation-free, like the undirected core, with or
// without a fault plan.
func BenchmarkDicongestRunCore(b *testing.B) {
	const n = 64
	d := graph.NewDigraph(n)
	for v := 0; v < n; v++ {
		for off := 1; off <= 4; off++ {
			d.MustAddArc(v, (v+off)%n)
		}
	}
	var err error
	for _, bc := range []struct {
		rounds int
		plan   *faults.Plan
	}{
		{64, nil},
		{1024, nil},
		{1024, &faults.Plan{Seed: 5, DropProb: 0.02, MaxDelay: 2}},
	} {
		name := fmt.Sprintf("rounds=%d", bc.rounds)
		if bc.plan != nil {
			name += ",faults"
		}
		rounds, plan := bc.rounds, bc.plan
		b.Run(name, func(b *testing.B) {
			factory := func(local dicongest.Local) dicongest.Node {
				out := make([]dicongest.Message, len(local.Neighbors))
				for i, nbr := range local.Neighbors {
					out[i] = dicongest.Message{To: nbr, Payload: int64(local.ID)}
				}
				return &diChatterNode{outbox: out, budget: rounds}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var res *dicongest.Result
			for i := 0; i < b.N; i++ {
				res, err = dicongest.Run(d, factory, dicongest.Options{MaxRounds: rounds + 2, Faults: plan})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Rounds), "rounds/op")
			b.ReportMetric(float64(res.Messages), "msgs/op")
		})
	}
}

// BenchmarkVerifyExhaustive runs the full Definition 1.1 exhaustive
// verification (all 2^(2K) pairs, parallel across cores) for the heaviest
// Section 2-4 families; this is the workload the constructions test
// suites spend their time in, tracked here for the BENCH trajectory. All
// tracked families are delta-enabled — undirected and directed alike — so
// verification walks the input cube in Gray-code order with per-worker
// oracle arenas: allocs/op must stay flat in the number of pairs (a few
// allocations per pair of per-worker setup cost at k=2 — the CI bench
// smoke fails if it regresses toward the hundreds-per-pair of the rebuild
// paths).
func BenchmarkVerifyExhaustive(b *testing.B) {
	families := []struct {
		name   string
		verify func(b *testing.B) func() error
	}{
		{"mdslb", func(b *testing.B) func() error {
			fam, err := mdslb.New(2)
			if err != nil {
				b.Fatal(err)
			}
			return func() error { return lbfamily.Verify(fam) }
		}},
		{"maxcutlb", func(b *testing.B) func() error {
			fam, err := maxcutlb.New(2)
			if err != nil {
				b.Fatal(err)
			}
			return func() error { return lbfamily.Verify(fam) }
		}},
		{"steinerlb", func(b *testing.B) func() error {
			fam, err := steinerlb.New(2)
			if err != nil {
				b.Fatal(err)
			}
			return func() error { return lbfamily.Verify(fam) }
		}},
		{"hamlb", func(b *testing.B) func() error {
			fam, err := hamlb.New(2)
			if err != nil {
				b.Fatal(err)
			}
			return func() error { return lbfamily.VerifyDigraph(fam) }
		}},
		{"kmdslb", func(b *testing.B) func() error {
			fam, err := kmdslb.NewTwoMDS(kmdsParams(b))
			if err != nil {
				b.Fatal(err)
			}
			return func() error { return lbfamily.Verify(fam) }
		}},
		{"dirsteinerlb", func(b *testing.B) func() error {
			fam, err := kmdslb.NewDirSteiner(kmdsParams(b))
			if err != nil {
				b.Fatal(err)
			}
			return func() error { return lbfamily.VerifyDigraph(fam) }
		}},
		{"boundedlb", func(b *testing.B) func() error {
			fam, err := boundedlb.NewFamily(2, 3)
			if err != nil {
				b.Fatal(err)
			}
			return func() error { return lbfamily.Verify(fam) }
		}},
	}
	for _, bench := range families {
		b.Run(bench.name, func(b *testing.B) {
			verify := bench.verify(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := verify(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCertifyThroughput measures the Theorem 1.1 certification
// engine end to end: one op is one exhaustive 2^(2K) sweep at k=2 (256
// CONGEST runs, sharded across all cores), on an undirected pairing
// (mds/collect, the Theorem 2.1 centerpiece) and a directed one
// (hamlb/collect, Section 2.2). Reports pairs/s — the sweep throughput
// the serving layer's /v1/stats also surfaces — for the BENCH
// trajectory; allocs/op is CI-guarded, since near-flat allocations
// across 256 pairs is the whole point of the worker-private delta
// instances and simulator arenas.
func BenchmarkCertifyThroughput(b *testing.B) {
	b.Run("mds-collect", func(b *testing.B) {
		fam, err := mdslb.New(2)
		if err != nil {
			b.Fatal(err)
		}
		alg := reduction.CollectMDS(fam)
		b.ReportAllocs()
		b.ResetTimer()
		var pairs int64
		for i := 0; i < b.N; i++ {
			rep, err := reduction.Certify(fam, alg, reduction.Config{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if rep.Mismatches != 0 {
				b.Fatalf("collect misdecided %d pairs", rep.Mismatches)
			}
			pairs += int64(rep.Completed)
		}
		b.ReportMetric(float64(pairs)/b.Elapsed().Seconds(), "pairs/s")
	})
	// Metrics-on variant: the sub-name shares the mds-collect prefix on
	// purpose, so the CI allocs guard for mds-collect also gates this
	// path — per-pair timing plus three histogram observations must add
	// O(1) allocations per sweep, not per pair.
	b.Run("mds-collect-metrics", func(b *testing.B) {
		fam, err := mdslb.New(2)
		if err != nil {
			b.Fatal(err)
		}
		alg := reduction.CollectMDS(fam)
		sm := obs.MustSweepMetrics(obs.NewRegistry())
		b.ReportAllocs()
		b.ResetTimer()
		var pairs int64
		for i := 0; i < b.N; i++ {
			rep, err := reduction.Certify(fam, alg, reduction.Config{Seed: 1, Metrics: sm})
			if err != nil {
				b.Fatal(err)
			}
			if rep.Mismatches != 0 {
				b.Fatalf("collect misdecided %d pairs", rep.Mismatches)
			}
			pairs += int64(rep.Completed)
		}
		b.ReportMetric(float64(pairs)/b.Elapsed().Seconds(), "pairs/s")
	})
	b.Run("hamlb-collect", func(b *testing.B) {
		fam, err := hamlb.New(2)
		if err != nil {
			b.Fatal(err)
		}
		alg := reduction.CollectHamPath(fam)
		b.ReportAllocs()
		b.ResetTimer()
		var pairs int64
		for i := 0; i < b.N; i++ {
			rep, err := reduction.CertifyDigraph(fam, alg, reduction.Config{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if rep.Mismatches != 0 {
				b.Fatalf("collect misdecided %d pairs", rep.Mismatches)
			}
			pairs += int64(rep.Completed)
		}
		b.ReportMetric(float64(pairs)/b.Elapsed().Seconds(), "pairs/s")
	})
}

// BenchmarkServeThroughput measures the job-serving layer end to end:
// b.N certification jobs (sampled mds/greedy sweeps) submitted over HTTP
// at concurrency 8 against a 4-worker server, each waited to completion
// through the polling client. Reports request throughput (req/s) and p99
// submit-to-terminal latency (p99-ms) for the BENCH trajectory; the
// latency floor is the client's initial 10ms poll interval, so the
// numbers track queueing and serving overhead, not sweep cost.
func BenchmarkServeThroughput(b *testing.B) {
	srv := serve.New(serve.Config{Workers: 4, QueueDepth: 64, DefaultTimeout: time.Minute}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())
	cl := client.New(ts.URL)
	ctx := context.Background()

	// Warm the family-base cache so the measured section is steady-state
	// serving, not the one-off family build.
	st, err := cl.Submit(ctx, serve.JobRequest{Family: "mds", Alg: "greedy", Pairs: 2})
	if err != nil {
		b.Fatal(err)
	}
	if st, err = cl.Wait(ctx, st.ID); err != nil || st.State != serve.StateDone {
		b.Fatalf("warmup job ended %+v, err %v", st, err)
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		failures  atomic.Int64
	)
	const concurrency = 8
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			st, err := cl.Submit(ctx, serve.JobRequest{Family: "mds", Alg: "greedy", Pairs: 4, Seed: int64(i)})
			if err == nil {
				st, err = cl.Wait(ctx, st.ID)
			}
			if err != nil || st.State != serve.StateDone {
				failures.Add(1)
				return
			}
			mu.Lock()
			latencies = append(latencies, time.Since(t0))
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	if n := failures.Load(); n > 0 {
		b.Fatalf("%d of %d jobs failed", n, b.N)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[int(0.99*float64(len(latencies)-1))]
	b.ReportMetric(float64(len(latencies))/elapsed.Seconds(), "req/s")
	b.ReportMetric(float64(p99.Microseconds())/1000, "p99-ms")
}

// BenchmarkMVCFamily covers the Section 3 base family (used by E8/E9).
func BenchmarkMVCFamily(b *testing.B) {
	fam, _ := mvclb.New(2)
	x, _ := comm.BitsFromUint64(4, 0b0011)
	g, err := fam.Build(x, x)
	if err != nil {
		b.Fatal(err)
	}
	stats, _ := lbfamily.MeasureStats(fam)
	reportFamily(b, stats, fam)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fam.Predicate(g); err != nil {
			b.Fatal(err)
		}
	}
}
